package sram

import (
	"testing"

	"cache8t/internal/rng"
)

func smallBitConfig(cell CellKind, interleave int) ArrayConfig {
	return ArrayConfig{Cell: cell, Rows: 8, Cols: 32, Interleave: interleave, Subarrays: 1}
}

func bitsOf(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v>>i&1 == 1
	}
	return out
}

func TestBitArrayValidation(t *testing.T) {
	if _, err := NewBitArray(ArrayConfig{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	a, err := NewBitArray(smallBitConfig(EightT, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.WordBits() != 8 || a.Words() != 4 {
		t.Fatalf("geometry: %d bits x %d words", a.WordBits(), a.Words())
	}
	if _, err := a.ReadWord(99, 0); err == nil {
		t.Error("bad row accepted")
	}
	if _, err := a.ReadWord(0, 9); err == nil {
		t.Error("bad word accepted")
	}
	if err := a.WriteWordUnsafe(0, 0, make([]bool, 3)); err == nil {
		t.Error("bad width accepted")
	}
	if _, err := a.InjectUpset(0, 30, 4); err == nil {
		t.Error("out-of-row upset accepted")
	}
}

func TestRMWWriteIsExact(t *testing.T) {
	a, _ := NewBitArray(smallBitConfig(EightT, 4), 1)
	// Populate row 2 with distinct words via the safe sequence.
	for w := 0; w < 4; w++ {
		if err := a.ReadRowToLatches(2); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteWordRMW(2, w, bitsOf(uint64(0x11*(w+1)), 8)); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 4; w++ {
		got, err := a.ReadWord(2, w)
		if err != nil {
			t.Fatal(err)
		}
		want := bitsOf(uint64(0x11*(w+1)), 8)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("word %d bit %d corrupted", w, i)
			}
		}
	}
}

func TestRMWRequiresMatchingLatches(t *testing.T) {
	a, _ := NewBitArray(smallBitConfig(EightT, 4), 1)
	if err := a.WriteWordRMW(1, 0, make([]bool, 8)); err == nil {
		t.Fatal("RMW write without latched row accepted")
	}
	if err := a.ReadRowToLatches(3); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteWordRMW(1, 0, make([]bool, 8)); err == nil {
		t.Fatal("RMW write against stale latches accepted")
	}
	// Latches are consumed by a commit: a second write needs a re-read.
	if err := a.ReadRowToLatches(1); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteWordRMW(1, 0, make([]bool, 8)); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteWordRMW(1, 1, make([]bool, 8)); err == nil {
		t.Fatal("second RMW write reused consumed latches")
	}
}

func TestUnsafeWriteCorruptsHalfSelectedCells(t *testing.T) {
	// The paper's premise, demonstrated: an interleaved 8T array loses
	// half-selected data on a partial-row write without RMW.
	a, _ := NewBitArray(smallBitConfig(EightT, 4), 1)
	if err := a.ReadRowToLatches(0); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteWordRMW(0, 1, bitsOf(0xff, 8)); err != nil {
		t.Fatal(err)
	}
	// Unsafe write to word 0 of the same row.
	if err := a.WriteWordUnsafe(0, 0, bitsOf(0xaa, 8)); err != nil {
		t.Fatal(err)
	}
	// Word 0 (selected) is exact.
	got, _ := a.ReadWord(0, 0)
	for i, want := range bitsOf(0xaa, 8) {
		if got[i] != want {
			t.Fatalf("selected word corrupted at bit %d", i)
		}
	}
	// Word 1 (half-selected, previously 0xff) is destroyed with
	// DisturbProb = 1: every bit flipped.
	got, _ = a.ReadWord(0, 1)
	corrupted := 0
	for i, wasSet := range bitsOf(0xff, 8) {
		if got[i] != wasSet {
			corrupted++
		}
		_ = i
	}
	if corrupted != 8 {
		t.Fatalf("half-selected word lost %d/8 bits, expected all at DisturbProb=1", corrupted)
	}
}

func TestUnsafeWriteIsSafeWithoutInterleavingOr6T(t *testing.T) {
	// Chang et al.'s organization: one word per row, no half-selected
	// cells, direct writes are fine.
	word, _ := NewBitArray(smallBitConfig(EightT, 1), 1)
	if err := word.WriteWordUnsafe(0, 0, bitsOf(0x5aa5_5aa5, 32)); err != nil {
		t.Fatal(err)
	}
	got, _ := word.ReadWord(0, 0)
	for i, want := range bitsOf(0x5aa5_5aa5, 32) {
		if got[i] != want {
			t.Fatalf("non-interleaved direct write corrupted bit %d", i)
		}
	}
	// 6T arrays tolerate the half-select bias even when interleaved.
	six, _ := NewBitArray(smallBitConfig(SixT, 4), 1)
	if err := six.ReadRowToLatches(0); err != nil {
		t.Fatal(err)
	}
	if err := six.WriteWordRMW(0, 1, bitsOf(0xff, 8)); err != nil {
		t.Fatal(err)
	}
	if err := six.WriteWordUnsafe(0, 0, bitsOf(0xaa, 8)); err != nil {
		t.Fatal(err)
	}
	got, _ = six.ReadWord(0, 1)
	for i, want := range bitsOf(0xff, 8) {
		if got[i] != want {
			t.Fatalf("6T half-selected word corrupted bit %d", i)
		}
	}
}

func TestRMWSequencePropertyAgainstReference(t *testing.T) {
	// Random word writes through the full RMW sequence match a plain
	// word-array reference exactly, for every interleaving degree.
	for _, il := range []int{1, 2, 4, 8} {
		a, _ := NewBitArray(smallBitConfig(EightT, il), uint64(il))
		wordBits := a.WordBits()
		ref := make([][]uint64, a.Config().Rows)
		for i := range ref {
			ref[i] = make([]uint64, il)
		}
		r := rng.New(uint64(100 + il))
		for step := 0; step < 2000; step++ {
			row := r.Intn(a.Config().Rows)
			word := r.Intn(il)
			if r.Bool(0.5) {
				v := r.Uint64() & (1<<wordBits - 1)
				if err := a.ReadRowToLatches(row); err != nil {
					t.Fatal(err)
				}
				if err := a.WriteWordRMW(row, word, bitsOf(v, wordBits)); err != nil {
					t.Fatal(err)
				}
				ref[row][word] = v
			} else {
				got, err := a.ReadWord(row, word)
				if err != nil {
					t.Fatal(err)
				}
				want := bitsOf(ref[row][word], wordBits)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("il=%d step %d: row %d word %d bit %d mismatch", il, step, row, word, i)
					}
				}
			}
		}
	}
}

func TestInterleavingSpreadsBurstAcrossWords(t *testing.T) {
	// A 4-bit adjacent burst in a 4-way interleaved row flips exactly one
	// bit in each of the four words (§2's soft-error argument).
	a, _ := NewBitArray(smallBitConfig(EightT, 4), 1)
	flipped, err := a.InjectUpset(0, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	wordHits := map[int]int{}
	for _, col := range flipped {
		wordHits[a.WordOfColumn(col)]++
	}
	if len(wordHits) != 4 {
		t.Fatalf("burst hit %d words, want 4", len(wordHits))
	}
	for w, n := range wordHits {
		if n != 1 {
			t.Fatalf("word %d took %d flips, want 1", w, n)
		}
	}
	// The same burst in a non-interleaved row lands entirely in one word.
	b, _ := NewBitArray(smallBitConfig(EightT, 1), 1)
	flipped, err = b.InjectUpset(0, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range flipped {
		if b.WordOfColumn(col) != 0 {
			t.Fatal("non-interleaved columns mapped to several words")
		}
	}
}

func TestRowSnapshot(t *testing.T) {
	a, _ := NewBitArray(smallBitConfig(EightT, 4), 1)
	if err := a.ReadRowToLatches(5); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteWordRMW(5, 2, bitsOf(0x3c, 8)); err != nil {
		t.Fatal(err)
	}
	snap, err := a.RowSnapshot(5)
	if err != nil {
		t.Fatal(err)
	}
	snap[0] = !snap[0]
	fresh, _ := a.RowSnapshot(5)
	if fresh[0] == snap[0] {
		t.Fatal("snapshot aliases array storage")
	}
	if _, err := a.RowSnapshot(-1); err == nil {
		t.Fatal("bad row accepted")
	}
}
