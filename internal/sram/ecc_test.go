package sram

import (
	"testing"
	"testing/quick"

	"cache8t/internal/rng"
)

func TestECCCleanRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, ^uint64(0), 0xdeadbeefcafebabe} {
		w := ECCEncode(v)
		got, status := ECCDecode(w)
		if status != ECCClean || got != v {
			t.Errorf("clean decode of %#x: got %#x status %v", v, got, status)
		}
	}
}

func TestECCCorrectsEverySingleDataBit(t *testing.T) {
	data := uint64(0x0123456789abcdef)
	w := ECCEncode(data)
	for bit := 0; bit < 64; bit++ {
		corrupt := w
		corrupt.Data ^= 1 << bit
		got, status := ECCDecode(corrupt)
		if status != ECCCorrected {
			t.Fatalf("bit %d: status %v", bit, status)
		}
		if got != data {
			t.Fatalf("bit %d: corrected to %#x, want %#x", bit, got, data)
		}
	}
}

func TestECCCorrectsCheckBitFlips(t *testing.T) {
	data := uint64(0xfeedface)
	w := ECCEncode(data)
	for bit := 0; bit < 8; bit++ {
		corrupt := w
		corrupt.Check ^= 1 << bit
		got, status := ECCDecode(corrupt)
		if status != ECCCorrected {
			t.Fatalf("check bit %d: status %v", bit, status)
		}
		if got != data {
			t.Fatalf("check bit %d: data changed to %#x", bit, got)
		}
	}
}

func TestECCDetectsDoubleBitErrors(t *testing.T) {
	data := uint64(0x5555aaaa5555aaaa)
	w := ECCEncode(data)
	r := rng.New(9)
	for trial := 0; trial < 500; trial++ {
		b1 := r.Intn(64)
		b2 := r.Intn(64)
		if b1 == b2 {
			continue
		}
		corrupt := w
		corrupt.Data ^= 1<<b1 | 1<<b2
		if _, status := ECCDecode(corrupt); status != ECCDetected {
			t.Fatalf("double flip %d,%d: status %v", b1, b2, status)
		}
	}
}

func TestECCSingleBitProperty(t *testing.T) {
	f := func(data uint64, bit uint8) bool {
		w := ECCEncode(data)
		w.Data ^= 1 << (bit % 64)
		got, status := ECCDecode(w)
		return status == ECCCorrected && got == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECCStatusString(t *testing.T) {
	for _, s := range []ECCStatus{ECCClean, ECCCorrected, ECCDetected} {
		if s.String() == "" {
			t.Fatal("empty status name")
		}
	}
	if ECCStatus(9).String() == "" {
		t.Fatal("unknown status unnamed")
	}
}

func TestBurstImpact(t *testing.T) {
	// 4-way interleave absorbs any burst up to 4 adjacent bits.
	for width := 1; width <= 4; width++ {
		o, err := BurstImpact(4, width)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Correctable || o.MaxBitsInWord != 1 || o.WordsHit != width {
			t.Errorf("interleave 4 width %d: %+v", width, o)
		}
	}
	// Width 5 overflows into a second bit of one word.
	o, _ := BurstImpact(4, 5)
	if o.Correctable || o.MaxBitsInWord != 2 {
		t.Errorf("interleave 4 width 5: %+v", o)
	}
	// Non-interleaved: any burst >= 2 is uncorrectable per word.
	o, _ = BurstImpact(1, 2)
	if o.Correctable || o.MaxBitsInWord != 2 || o.WordsHit != 1 {
		t.Errorf("interleave 1 width 2: %+v", o)
	}
	if _, err := BurstImpact(0, 1); err == nil {
		t.Error("bad interleave accepted")
	}
}

// TestInterleaveEndToEndWithECC ties the pieces together: inject a physical
// burst into a bit-level row, decode every word with SEC-DED, and confirm
// the §2 story — interleaved rows recover fully, a non-interleaved row
// detects but cannot correct.
func TestInterleaveEndToEndWithECC(t *testing.T) {
	writeWords := func(a *BitArray, row int, vals []uint64) {
		t.Helper()
		for w, v := range vals {
			if err := a.ReadRowToLatches(row); err != nil {
				t.Fatal(err)
			}
			if err := a.WriteWordRMW(row, w, bitsOf(v, a.WordBits())); err != nil {
				t.Fatal(err)
			}
		}
	}
	toUint := func(bs []bool) uint64 {
		var v uint64
		for i, b := range bs {
			if b {
				v |= 1 << i
			}
		}
		return v
	}

	// Interleaved: 4 words of 8 bits each; codes computed on the original
	// values (check bits live in a parallel structure in real arrays).
	il, _ := NewBitArray(smallBitConfig(EightT, 4), 1)
	vals := []uint64{0x12, 0x34, 0x56, 0x78}
	writeWords(il, 0, vals)
	codes := make([]ECCWord, len(vals))
	for i, v := range vals {
		codes[i] = ECCEncode(v)
	}
	if _, err := il.InjectUpset(0, 12, 4); err != nil {
		t.Fatal(err)
	}
	for w := range vals {
		stored, _ := il.ReadWord(0, w)
		code := codes[w]
		code.Data = toUint(stored)
		got, status := ECCDecode(code)
		if status == ECCDetected {
			t.Fatalf("interleaved word %d uncorrectable after 4-bit burst", w)
		}
		if got != vals[w] {
			t.Fatalf("interleaved word %d decoded %#x, want %#x", w, got, vals[w])
		}
	}

	// Non-interleaved: the same burst lands 4 bits deep in one word.
	flat, _ := NewBitArray(smallBitConfig(EightT, 1), 1)
	if err := flat.WriteWordUnsafe(0, 0, bitsOf(0x12345678, 32)); err != nil {
		t.Fatal(err)
	}
	code := ECCEncode(0x12345678)
	if _, err := flat.InjectUpset(0, 12, 4); err != nil {
		t.Fatal(err)
	}
	stored, _ := flat.ReadWord(0, 0)
	code.Data = toUint(stored)
	got, status := ECCDecode(code)
	// SEC-DED over a 4-bit burst may flag it, alias to clean, or
	// mis-correct — but it can never recover the original value. That is
	// the failure interleaving exists to prevent.
	if got == 0x12345678 {
		t.Fatalf("non-interleaved 4-bit burst recovered the data (status %v)", status)
	}
}
