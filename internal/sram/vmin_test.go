package sram

import (
	"math"
	"testing"
)

func TestCellFailProbMonotone(t *testing.T) {
	m := DefaultVminModel(SixT)
	prev := 1.1
	for v := 0.3; v <= 1.0; v += 0.05 {
		p := m.CellFailProb(v)
		if p < 0 || p > 1 {
			t.Fatalf("fail prob %v at %v", p, v)
		}
		if p >= prev {
			t.Fatalf("fail prob not decreasing at %v", v)
		}
		prev = p
	}
	if got := m.CellFailProb(m.MeanVolts); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("fail prob at mean = %v, want 0.5", got)
	}
}

func TestCellFailProbDegenerateSigma(t *testing.T) {
	m := VminModel{MeanVolts: 0.5, SigmaVolts: 0}
	if m.CellFailProb(0.6) != 0 || m.CellFailProb(0.4) != 1 {
		t.Fatal("degenerate sigma misbehaved")
	}
}

func TestArrayYieldBounds(t *testing.T) {
	m := DefaultVminModel(EightT)
	if y := m.ArrayYield(1.0, 512*1024); y < 0.999 {
		t.Errorf("high-voltage yield = %v", y)
	}
	if y := m.ArrayYield(m.MeanVolts, 512*1024); y > 1e-6 {
		t.Errorf("mean-voltage yield = %v, should be ~0 for large arrays", y)
	}
	if m.ArrayYield(0.1, 0) != 1 {
		t.Error("zero-bit array should always yield")
	}
}

func TestArrayVminValidation(t *testing.T) {
	m := DefaultVminModel(SixT)
	if _, err := m.ArrayVmin(0, 0.99); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := m.ArrayVmin(100, 0); err == nil {
		t.Error("zero yield accepted")
	}
	if _, err := m.ArrayVmin(100, 1); err == nil {
		t.Error("unit yield accepted")
	}
}

func TestVminGrowsWithCapacity(t *testing.T) {
	// Extreme-value statistics: more cells, deeper tail, higher Vmin.
	m := DefaultVminModel(SixT)
	prev := 0.0
	for _, kb := range []int{8, 64, 512, 4096} {
		v, err := m.ArrayVmin(kb*1024*8, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Fatalf("Vmin not growing: %v KB -> %.4f V (prev %.4f)", kb, v, prev)
		}
		prev = v
	}
}

func TestCacheVminMatchesHeadlineNumbers(t *testing.T) {
	// The model is calibrated so a 64 KB cache lands near the published
	// figures the simple CellKind.VminVolts constants carry.
	six, err := CacheVmin(SixT, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := CacheVmin(EightT, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(six-SixT.VminVolts()) > 0.05 {
		t.Errorf("6T 64KB Vmin = %.3f, want ~%.2f", six, SixT.VminVolts())
	}
	if math.Abs(eight-EightT.VminVolts()) > 0.05 {
		t.Errorf("8T 64KB Vmin = %.3f, want ~%.2f", eight, EightT.VminVolts())
	}
	if eight >= six {
		t.Errorf("8T Vmin %.3f not below 6T %.3f", eight, six)
	}
}

func TestVminYieldConsistency(t *testing.T) {
	// At the solved Vmin the yield must meet the target; a hair below it
	// must not (bisection sanity).
	m := DefaultVminModel(EightT)
	const bits = 64 * 1024 * 8
	v, err := m.ArrayVmin(bits, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if y := m.ArrayYield(v, bits); y < 0.99 {
		t.Errorf("yield at solved Vmin = %v", y)
	}
	if y := m.ArrayYield(v-0.01, bits); y >= 0.99 {
		t.Errorf("yield 10mV below Vmin = %v, bisection too loose", y)
	}
}
