// Package sram models 6T and 8T SRAM cells and arrays at the event level:
// which circuit phases fire for each operation, what each phase costs in
// energy and latency, how ports are occupied, and how much silicon the
// structures take.
//
// The paper's headline numbers are array *event counts*; this package is what
// turns those counts into the power/performance commentary of §5.5 and the
// area arithmetic of §5.4, and what encodes the circuit-level constraints
// (column selection, RMW phases, separate read/write word lines) that the
// microarchitecture in internal/core is built around.
package sram

import "fmt"

// CellKind selects the bit-cell circuit.
type CellKind uint8

const (
	// SixT is the conventional 6-transistor cell: single shared port,
	// read-disturb limited, higher Vmin.
	SixT CellKind = iota
	// EightT is the cell of Chang et al. (Figure 1): a 6T core plus a
	// 2-transistor read stack (M7/M8), giving a decoupled read port and
	// sub-threshold-capable Vmin, but requiring RMW for partial-row writes
	// in bit-interleaved arrays.
	EightT
	// NineT is a near-threshold 9-transistor cell in the style of
	// arXiv:1812.10011: the 8T read stack plus one extra transistor that
	// cuts the read-path leakage feedback, buying a lower Vmin at the cost
	// of a slightly heavier read bit line. It keeps the 8T's decoupled read
	// port, so every 8T controller runs unchanged on it.
	NineT
)

// String names the cell.
func (k CellKind) String() string {
	switch k {
	case SixT:
		return "6T"
	case EightT:
		return "8T"
	case NineT:
		return "9T"
	default:
		return fmt.Sprintf("CellKind(%d)", uint8(k))
	}
}

// Transistors returns the transistor count per cell.
func (k CellKind) Transistors() int {
	switch k {
	case EightT:
		return 8
	case NineT:
		return 9
	default:
		return 6
	}
}

// ReadPorts returns the number of read ports usable concurrently with a
// write. The 8T cell's decoupled RBL/RWL stack gives it an independent read
// port (1R+1W operation); the 6T cell shares one port for both.
func (k CellKind) ReadPorts() int {
	if k == EightT || k == NineT {
		return 1
	}
	return 0
}

// VminVolts returns the minimum reliable operating voltage. The 6T value
// reflects read-stability limits around 0.7 V at scaled nodes (Nakagome et
// al.); the 8T value reflects demonstrated sub-threshold operation near
// 0.35 V (Verma & Chandrakasan's 65 nm sub-threshold 8T array); the 9T
// value reflects the deeper near-threshold floor the extra leakage-cut
// transistor buys (arXiv:1812.10011 reports reliable operation below the
// 8T floor).
func (k CellKind) VminVolts() float64 {
	switch k {
	case EightT:
		return 0.35
	case NineT:
		return 0.28
	default:
		return 0.70
	}
}

// nodeIndex maps a technology node in nm to a row of the area tables.
func nodeIndex(nodeNm int) (int, error) {
	switch nodeNm {
	case 65:
		return 0, nil
	case 45:
		return 1, nil
	case 32:
		return 2, nil
	case 22:
		return 3, nil
	default:
		return 0, fmt.Errorf("sram: unsupported technology node %dnm (have 65/45/32/22)", nodeNm)
	}
}

// Cell area tables in um^2. The 6T row follows published bit-cell areas
// (~0.52 um^2 at 65 nm scaling roughly 0.5x per node). The 8T row carries
// the extra read stack; crucially, per Morita et al. (cited in paper §2),
// the 8T cell does not need the read-stability upsizing that 6T does at
// scaled nodes, so the 8T area premium *shrinks* below 45 nm and inverts by
// 22 nm ("8T cells are more compact in technology nodes beyond 45nm").
// The 9T row adds one minimum-size transistor per cell on top of 8T —
// roughly a 6–8% area adder that shrinks with the node, tracking the 8T
// scaling behavior.
var (
	sixTAreaUm2   = [4]float64{0.525, 0.299, 0.171, 0.108}
	eightTAreaUm2 = [4]float64{0.656, 0.342, 0.182, 0.104}
	nineTAreaUm2  = [4]float64{0.702, 0.364, 0.192, 0.109}
)

// AreaUm2 returns the bit-cell area at the given node in square microns.
func (k CellKind) AreaUm2(nodeNm int) (float64, error) {
	idx, err := nodeIndex(nodeNm)
	if err != nil {
		return 0, err
	}
	switch k {
	case EightT:
		return eightTAreaUm2[idx], nil
	case NineT:
		return nineTAreaUm2[idx], nil
	default:
		return sixTAreaUm2[idx], nil
	}
}

// AreaRatio returns 8T area / 6T area at the node: > 1 where 8T pays a
// premium, <= 1 beyond 45 nm.
func AreaRatio(nodeNm int) (float64, error) {
	six, err := SixT.AreaUm2(nodeNm)
	if err != nil {
		return 0, err
	}
	eight, err := EightT.AreaUm2(nodeNm)
	if err != nil {
		return 0, err
	}
	return eight / six, nil
}
