package sram

import (
	"fmt"
	"math"
)

// DVFS modeling (§1): the whole motivation for 8T cells is that the cache's
// Vmin gates how far dynamic voltage/frequency scaling can descend. This file
// provides operating-point tables and an alpha-power-law delay model so the
// examples and experiment E9 can show the 6T wall and what 8T opens up.

// OperatingPoint is one DVFS level.
type OperatingPoint struct {
	VoltageV float64
	FreqMHz  float64
}

// String renders like "0.80V/1600MHz".
func (p OperatingPoint) String() string {
	return fmt.Sprintf("%.2fV/%.0fMHz", p.VoltageV, p.FreqMHz)
}

// AlphaPower models transistor drive with the alpha-power law: delay is
// proportional to V / (V - Vth)^alpha. Alpha ~1.3 fits short-channel devices.
type AlphaPower struct {
	VthVolts float64
	Alpha    float64
	// NominalV and NominalFreqMHz anchor the curve: FreqAt(NominalV) =
	// NominalFreqMHz.
	NominalV       float64
	NominalFreqMHz float64
}

// DefaultAlphaPower returns a 45 nm-class device model anchored at
// 1.0 V / 2000 MHz.
func DefaultAlphaPower() AlphaPower {
	return AlphaPower{VthVolts: 0.30, Alpha: 1.3, NominalV: 1.0, NominalFreqMHz: 2000}
}

// delayFactor returns relative delay at v (1.0 at NominalV); +Inf at or
// below threshold.
func (a AlphaPower) delayFactor(v float64) float64 {
	if v <= a.VthVolts {
		return math.Inf(1)
	}
	num := v / math.Pow(v-a.VthVolts, a.Alpha)
	den := a.NominalV / math.Pow(a.NominalV-a.VthVolts, a.Alpha)
	return num / den
}

// FreqAt returns the maximum operating frequency at voltage v in MHz.
func (a AlphaPower) FreqAt(v float64) float64 {
	d := a.delayFactor(v)
	if math.IsInf(d, 1) {
		return 0
	}
	return a.NominalFreqMHz / d
}

// Levels builds an n-point DVFS table descending from the nominal voltage to
// vmin (inclusive), with frequencies from the alpha-power law. More levels
// mean better fit to demand (§1: "the more the number of voltage levels the
// higher the chances of operating at the optimal voltage").
func (a AlphaPower) Levels(vmin float64, n int) ([]OperatingPoint, error) {
	if n < 2 {
		return nil, fmt.Errorf("sram: need at least 2 DVFS levels, got %d", n)
	}
	if vmin >= a.NominalV {
		return nil, fmt.Errorf("sram: vmin %.2f not below nominal %.2f", vmin, a.NominalV)
	}
	if vmin <= a.VthVolts {
		return nil, fmt.Errorf("sram: vmin %.2f at or below threshold %.2f", vmin, a.VthVolts)
	}
	out := make([]OperatingPoint, n)
	step := (a.NominalV - vmin) / float64(n-1)
	for i := range out {
		v := a.NominalV - float64(i)*step
		out[i] = OperatingPoint{VoltageV: v, FreqMHz: a.FreqAt(v)}
	}
	return out, nil
}

// LevelsForCell builds the DVFS table reachable with a cache built from the
// given cell: the table bottoms out at the cell's Vmin. This is the paper's
// framing — the cache is "the bottleneck in deciding Vmin".
func (a AlphaPower) LevelsForCell(cell CellKind, n int) ([]OperatingPoint, error) {
	return a.Levels(cell.VminVolts(), n)
}

// EnergyPerOpAt returns dynamic energy of one composite op (given its energy
// at the model's voltage) rescaled to voltage v: E scales with V^2 for
// full-swing nets. Limited-swing terms scale slightly better; treating all
// terms as V^2 is conservative for the 8T advantage.
func EnergyPerOpAt(eAtVdd, vdd, v float64) float64 {
	ratio := v / vdd
	return eAtVdd * ratio * ratio
}
