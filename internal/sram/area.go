package sram

import "fmt"

// Area arithmetic for §5.4: the Set-Buffer and Tag-Buffer overheads relative
// to the cache data array.

// AreaReport summarizes the silicon cost of a cache plus the WG/WG+RB
// additions at one technology node.
type AreaReport struct {
	NodeNm int
	Cell   CellKind

	CacheBits     int
	SetBufferBits int
	TagBufferBits int

	CacheAreaUm2      float64
	SetBufferAreaUm2  float64
	TagBufferAreaUm2  float64
	MuxCompareAreaUm2 float64
}

// SetBufferOverhead returns Set-Buffer area / cache area (paper: < 0.2%).
func (r AreaReport) SetBufferOverhead() float64 {
	if r.CacheAreaUm2 == 0 {
		return 0
	}
	return r.SetBufferAreaUm2 / r.CacheAreaUm2
}

// TotalOverhead returns (Set-Buffer + Tag-Buffer + mux/comparator) area
// relative to the cache array.
func (r AreaReport) TotalOverhead() float64 {
	if r.CacheAreaUm2 == 0 {
		return 0
	}
	return (r.SetBufferAreaUm2 + r.TagBufferAreaUm2 + r.MuxCompareAreaUm2) / r.CacheAreaUm2
}

// ComputeArea builds the §5.4 report. cacheBits is the data-array capacity,
// setBufferBits the size of one set row, tagBufferBits from
// Geometry.TagBufferBits. Latch-based buffer bits are costed at 4x the SRAM
// bit-cell area (a latch plus mux wiring is far larger than a 6T/8T cell);
// comparators and the output mux are costed per compared/routed bit.
func ComputeArea(cell CellKind, nodeNm, cacheBits, setBufferBits, tagBufferBits int) (AreaReport, error) {
	if cacheBits <= 0 || setBufferBits <= 0 || tagBufferBits <= 0 {
		return AreaReport{}, fmt.Errorf("sram: non-positive bit counts %d/%d/%d",
			cacheBits, setBufferBits, tagBufferBits)
	}
	cellArea, err := cell.AreaUm2(nodeNm)
	if err != nil {
		return AreaReport{}, err
	}
	const (
		latchFactor   = 4.0 // latch bit vs SRAM bit cell
		compareFactor = 3.0 // XOR+tree per bit
		muxFactor     = 1.5 // 2:1 output mux per routed bit
	)
	r := AreaReport{
		NodeNm:        nodeNm,
		Cell:          cell,
		CacheBits:     cacheBits,
		SetBufferBits: setBufferBits,
		TagBufferBits: tagBufferBits,
	}
	r.CacheAreaUm2 = float64(cacheBits) * cellArea
	r.SetBufferAreaUm2 = float64(setBufferBits) * cellArea * latchFactor
	r.TagBufferAreaUm2 = float64(tagBufferBits) * cellArea * latchFactor
	// Silent-write comparators across one set row plus the WG+RB output mux
	// across one block's width.
	r.MuxCompareAreaUm2 = float64(setBufferBits)*cellArea*compareFactor/4 +
		float64(setBufferBits)*cellArea*muxFactor/4
	return r, nil
}
