package sram

import "testing"

func TestComputeAreaBaseline(t *testing.T) {
	// Paper §5.4: for the 64 KB / 4-way / 32 B baseline, the Set-Buffer is
	// one cache set = 128 B = 1024 bits and imposes "less than 0.2% area
	// overhead compared to the overall cache size"; the Tag-Buffer is
	// "negligible (less than 150 bits)".
	const (
		cacheBits  = 64 * 1024 * 8
		setBufBits = 128 * 8
		tagBufBits = 147
	)
	r, err := ComputeArea(EightT, 45, cacheBits, setBufBits, tagBufBits)
	if err != nil {
		t.Fatal(err)
	}
	if ov := r.SetBufferOverhead(); ov >= 0.01 {
		t.Errorf("Set-Buffer overhead = %.4f, want < 1%%", ov)
	}
	// With latch sizing the Set-Buffer lands near the paper's <0.2% only if
	// buffer bits dominate; our latchFactor=4 puts it at 4*1024/524288 =
	// 0.78%. The paper's figure counts raw storage ratio; check that too.
	raw := float64(setBufBits) / float64(cacheBits)
	if raw >= 0.002 {
		t.Errorf("raw Set-Buffer storage ratio = %.4f, want < 0.2%% (paper)", raw)
	}
	if r.TotalOverhead() >= 0.02 {
		t.Errorf("total overhead = %.4f, want < 2%%", r.TotalOverhead())
	}
	if r.TagBufferAreaUm2 >= r.SetBufferAreaUm2 {
		t.Error("Tag-Buffer should be smaller than Set-Buffer")
	}
}

func TestComputeAreaValidation(t *testing.T) {
	if _, err := ComputeArea(EightT, 45, 0, 1, 1); err == nil {
		t.Error("zero cache bits accepted")
	}
	if _, err := ComputeArea(EightT, 90, 1, 1, 1); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestOverheadZeroGuards(t *testing.T) {
	var r AreaReport
	if r.SetBufferOverhead() != 0 || r.TotalOverhead() != 0 {
		t.Error("zero report produced nonzero overheads")
	}
}
