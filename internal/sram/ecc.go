package sram

import (
	"fmt"
	"math/bits"
)

// SEC-DED Hamming(72,64) code — the "simple and low cost one bit correction
// technique" (§2, citing Kim et al.) that bit interleaving is designed to
// keep sufficient: interleaving spreads a spatially clustered upset across
// words so that each word sees at most one flipped bit, which SEC-DED
// corrects. Without interleaving (the Chang et al. word-granularity
// organization), a two-bit burst lands in one word and is only *detected*.
//
// Layout: the 64 data bits are numbered 0..63; check bits c0..c6 are the
// classic Hamming parities over data-bit positions (using the 1-based
// codeword numbering with powers of two reserved for checks), and c7 is the
// overall parity that upgrades SEC to SEC-DED.

// ECCWord is a data word with its check bits.
type ECCWord struct {
	Data  uint64
	Check uint8
}

// hammingPositions[i] is the 1-based codeword position of data bit i: the
// i-th non-power-of-two position.
var hammingPositions = func() [64]uint32 {
	var out [64]uint32
	pos := uint32(1)
	for i := 0; i < 64; {
		pos++
		if pos&(pos-1) == 0 { // power of two: check-bit slot
			continue
		}
		out[i] = pos
		i++
	}
	return out
}()

// ECCEncode computes the SEC-DED check bits for data.
func ECCEncode(data uint64) ECCWord {
	var check uint8
	for i := 0; i < 64; i++ {
		if data>>i&1 == 0 {
			continue
		}
		pos := hammingPositions[i]
		for c := 0; c < 7; c++ {
			if pos>>c&1 == 1 {
				check ^= 1 << c
			}
		}
	}
	// Overall parity over data and the 7 Hamming checks.
	parity := uint8(bits.OnesCount64(data)+bits.OnesCount8(check&0x7f)) & 1
	check |= parity << 7
	return ECCWord{Data: data, Check: check}
}

// ECCStatus classifies a decode outcome.
type ECCStatus uint8

const (
	// ECCClean means no error was present.
	ECCClean ECCStatus = iota
	// ECCCorrected means a single-bit error was found and fixed.
	ECCCorrected
	// ECCDetected means an uncorrectable (double-bit) error was found.
	ECCDetected
)

// String names the status.
func (s ECCStatus) String() string {
	switch s {
	case ECCClean:
		return "clean"
	case ECCCorrected:
		return "corrected"
	case ECCDetected:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("ECCStatus(%d)", uint8(s))
	}
}

// ECCDecode checks a stored word against its check bits, returning the
// (possibly corrected) data and the outcome. Double-bit errors are detected
// but the returned data is unreliable, as in real SEC-DED.
func ECCDecode(w ECCWord) (uint64, ECCStatus) {
	// Syndrome: recomputed Hamming checks vs stored checks. Overall
	// parity: over the stored codeword (data + 7 checks + parity bit) —
	// even for a clean word, odd for an odd number of flips.
	syndrome := (ECCEncode(w.Data).Check ^ w.Check) & 0x7f
	odd := (bits.OnesCount64(w.Data)+bits.OnesCount8(w.Check))&1 == 1
	switch {
	case syndrome == 0 && !odd:
		return w.Data, ECCClean
	case syndrome == 0 && odd:
		// The overall parity bit itself flipped; data is intact.
		return w.Data, ECCCorrected
	case odd:
		// Odd number of flips with a nonzero syndrome: single-bit error.
		// If the syndrome names a data position, flip it back; if it names
		// a check position, the data is already intact.
		for i, pos := range hammingPositions {
			if pos == uint32(syndrome) {
				return w.Data ^ 1<<i, ECCCorrected
			}
		}
		return w.Data, ECCCorrected
	default:
		// Nonzero syndrome with even overall parity: double-bit error.
		return w.Data, ECCDetected
	}
}

// InterleaveOutcome summarizes how an adjacent-bit burst lands on the words
// of one physical row under a given interleaving degree.
type InterleaveOutcome struct {
	Interleave    int
	BurstWidth    int
	WordsHit      int
	MaxBitsInWord int
	// Correctable reports whether per-word SEC-DED survives: true iff no
	// word took 2+ flips.
	Correctable bool
}

// BurstImpact computes, analytically, how a burst of `width` physically
// adjacent column flips distributes over interleaved words when bit i of
// word w sits at column i*interleave+w (the BitArray layout). Column c
// belongs to word c % interleave, so a burst of b adjacent columns hits
// min(b, interleave) distinct words with ceil(b/interleave) flips in the
// worst-hit word.
func BurstImpact(interleave, width int) (InterleaveOutcome, error) {
	if interleave < 1 || width < 1 {
		return InterleaveOutcome{}, fmt.Errorf("sram: bad burst impact args %d/%d", interleave, width)
	}
	wordsHit := width
	if wordsHit > interleave {
		wordsHit = interleave
	}
	maxBits := (width + interleave - 1) / interleave
	return InterleaveOutcome{
		Interleave:    interleave,
		BurstWidth:    width,
		WordsHit:      wordsHit,
		MaxBitsInWord: maxBits,
		Correctable:   maxBits <= 1,
	}, nil
}
