package sram

import (
	"strings"
	"testing"
)

func TestFreqAtAnchorsAndMonotonicity(t *testing.T) {
	a := DefaultAlphaPower()
	if got := a.FreqAt(a.NominalV); got != a.NominalFreqMHz {
		t.Fatalf("FreqAt(nominal) = %v, want %v", got, a.NominalFreqMHz)
	}
	prev := a.FreqAt(1.0)
	for v := 0.95; v > a.VthVolts+0.02; v -= 0.05 {
		f := a.FreqAt(v)
		if f >= prev {
			t.Fatalf("frequency not monotone: f(%.2f)=%v >= %v", v, f, prev)
		}
		prev = f
	}
	if a.FreqAt(a.VthVolts) != 0 {
		t.Fatal("frequency at threshold should be 0")
	}
	if a.FreqAt(0.1) != 0 {
		t.Fatal("frequency below threshold should be 0")
	}
}

func TestLevels(t *testing.T) {
	a := DefaultAlphaPower()
	levels, err := a.Levels(0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 6 {
		t.Fatalf("got %d levels", len(levels))
	}
	if levels[0].VoltageV != a.NominalV {
		t.Errorf("first level at %.2fV", levels[0].VoltageV)
	}
	if v := levels[len(levels)-1].VoltageV; v < 0.499 || v > 0.501 {
		t.Errorf("last level at %.3fV, want 0.5", v)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].VoltageV >= levels[i-1].VoltageV || levels[i].FreqMHz >= levels[i-1].FreqMHz {
			t.Errorf("levels not descending at %d: %v then %v", i, levels[i-1], levels[i])
		}
	}
}

func TestLevelsValidation(t *testing.T) {
	a := DefaultAlphaPower()
	if _, err := a.Levels(0.5, 1); err == nil {
		t.Error("1 level accepted")
	}
	if _, err := a.Levels(1.2, 4); err == nil {
		t.Error("vmin above nominal accepted")
	}
	if _, err := a.Levels(0.2, 4); err == nil {
		t.Error("vmin below threshold accepted")
	}
}

func TestLevelsForCellReflectVmin(t *testing.T) {
	// The 8T cache lets DVFS descend far below the 6T wall — the paper's
	// motivating claim.
	a := DefaultAlphaPower()
	six, err := a.LevelsForCell(SixT, 8)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := a.LevelsForCell(EightT, 8)
	if err != nil {
		t.Fatal(err)
	}
	sixFloor := six[len(six)-1].VoltageV
	eightFloor := eight[len(eight)-1].VoltageV
	if eightFloor >= sixFloor {
		t.Fatalf("8T floor %.2fV not below 6T floor %.2fV", eightFloor, sixFloor)
	}
	// At its floor the 8T system runs at a fraction of nominal energy.
	eNom := EnergyPerOpAt(1.0, 1.0, six[0].VoltageV)
	e8 := EnergyPerOpAt(1.0, 1.0, eightFloor)
	e6 := EnergyPerOpAt(1.0, 1.0, sixFloor)
	if !(e8 < e6 && e6 < eNom) {
		t.Fatalf("energy ordering violated: nom %.3f, 6T floor %.3f, 8T floor %.3f", eNom, e6, e8)
	}
}

func TestOperatingPointString(t *testing.T) {
	p := OperatingPoint{VoltageV: 0.8, FreqMHz: 1600}
	if got := p.String(); !strings.Contains(got, "0.80V") || !strings.Contains(got, "1600MHz") {
		t.Errorf("String = %q", got)
	}
}
