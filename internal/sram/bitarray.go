package sram

import (
	"fmt"

	"cache8t/internal/rng"
)

// BitArray is a functional, bit-level model of one SRAM mat, including the
// half-select hazard that motivates the whole paper (§2, Figure 2).
//
// In a bit-interleaved array, asserting a write word line selects every
// cell in the row, but the write drivers only hold valid data for the
// addressed word's columns. In a 6T array the half-selected columns are
// biased as in a read and survive. In an 8T array the cells are optimized
// for writing, and that same bias can flip them (Park et al., cited in §2):
// writing a word without RMW puts every half-selected bit in the row at
// risk. This model makes that risk concrete — WriteWordUnsafe disturbs
// half-selected bits with a configurable probability — so tests can show
// that the RMW sequence (and nothing less) keeps the array sound.
type BitArray struct {
	cfg     ArrayConfig
	bits    [][]bool // [row][col]
	latches []bool   // write-back latch row (Figure 2)
	lrow    int      // which row the latches hold, -1 when stale
	r       *rng.Xoshiro256

	// DisturbProb is the per-bit probability that a half-selected 8T cell
	// flips during an unsafe partial-row write. Real silicon is
	// voltage/process dependent; the default (1.0 at model level) makes
	// the hazard deterministic for testing. Set lower to model marginal
	// corner behaviour.
	DisturbProb float64
}

// NewBitArray builds a zeroed bit-level array.
func NewBitArray(cfg ArrayConfig, seed uint64) (*BitArray, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bits := make([][]bool, cfg.Rows)
	backing := make([]bool, cfg.Rows*cfg.Cols)
	for i := range bits {
		bits[i], backing = backing[:cfg.Cols], backing[cfg.Cols:]
	}
	return &BitArray{
		cfg:         cfg,
		bits:        bits,
		latches:     make([]bool, cfg.Cols),
		lrow:        -1,
		r:           rng.New(seed),
		DisturbProb: 1.0,
	}, nil
}

// Config returns the array configuration.
func (a *BitArray) Config() ArrayConfig { return a.cfg }

// WordBits returns the number of bits in one interleaved word.
func (a *BitArray) WordBits() int { return a.cfg.Cols / a.cfg.Interleave }

// Words returns the number of words per row (the interleaving degree).
func (a *BitArray) Words() int { return a.cfg.Interleave }

func (a *BitArray) check(row, word int) error {
	if row < 0 || row >= a.cfg.Rows {
		return fmt.Errorf("sram: row %d out of [0,%d)", row, a.cfg.Rows)
	}
	if word < 0 || word >= a.cfg.Interleave {
		return fmt.Errorf("sram: word %d out of [0,%d)", word, a.cfg.Interleave)
	}
	return nil
}

// columnOf maps (word, bit) to a physical column. Bit interleaving places
// bit i of every word side by side: column = bit*interleave + word. This is
// what spreads a spatially clustered upset across different words (§2).
func (a *BitArray) columnOf(word, bit int) int {
	return bit*a.cfg.Interleave + word
}

// ReadWord performs a read access: precharge, RWL, sense, column mux. The
// 8T read stack is non-destructive for every cell, half-selected or not.
func (a *BitArray) ReadWord(row, word int) ([]bool, error) {
	if err := a.check(row, word); err != nil {
		return nil, err
	}
	out := make([]bool, a.WordBits())
	for bit := range out {
		out[bit] = a.bits[row][a.columnOf(word, bit)]
	}
	return out, nil
}

// ReadRowToLatches performs the RMW read phase: the whole row lands in the
// write-back latches, the column mux stays quiet.
func (a *BitArray) ReadRowToLatches(row int) error {
	if err := a.check(row, 0); err != nil {
		return err
	}
	copy(a.latches, a.bits[row])
	a.lrow = row
	return nil
}

// WriteWordRMW performs the RMW write phase for one word: the write-back
// mux merges data into the latched row image, the write drivers hold valid
// data for EVERY column, and the full row commits. The latches must hold
// this row (ReadRowToLatches first) — the controller sequencing the paper's
// Figure 2 steps enforces exactly that.
func (a *BitArray) WriteWordRMW(row, word int, data []bool) error {
	if err := a.check(row, word); err != nil {
		return err
	}
	if a.lrow != row {
		return fmt.Errorf("sram: RMW write to row %d but latches hold row %d", row, a.lrow)
	}
	if len(data) != a.WordBits() {
		return fmt.Errorf("sram: word width %d, want %d", len(data), a.WordBits())
	}
	for bit, v := range data {
		a.latches[a.columnOf(word, bit)] = v
	}
	copy(a.bits[row], a.latches)
	a.lrow = -1 // latches consumed
	return nil
}

// WriteWordUnsafe drives only the addressed word's columns and asserts the
// write word line anyway — the column-selection violation. Selected bits
// are written correctly; every half-selected bit in the row flips with
// probability DisturbProb when the array needs RMW (interleaved 8T). On
// arrays that don't need RMW (6T, or word-granularity rows), this is a
// perfectly safe direct write.
func (a *BitArray) WriteWordUnsafe(row, word int, data []bool) error {
	if err := a.check(row, word); err != nil {
		return err
	}
	if len(data) != a.WordBits() {
		return fmt.Errorf("sram: word width %d, want %d", len(data), a.WordBits())
	}
	selected := make([]bool, a.cfg.Cols)
	for bit, v := range data {
		col := a.columnOf(word, bit)
		selected[col] = true
		a.bits[row][col] = v
	}
	if !a.cfg.NeedsRMW() {
		return nil
	}
	for col, sel := range selected {
		if sel {
			continue
		}
		if a.r.Bool(a.DisturbProb) {
			a.bits[row][col] = !a.bits[row][col]
		}
	}
	return nil
}

// RowSnapshot returns a copy of a row's bits, for verification.
func (a *BitArray) RowSnapshot(row int) ([]bool, error) {
	if err := a.check(row, 0); err != nil {
		return nil, err
	}
	out := make([]bool, a.cfg.Cols)
	copy(out, a.bits[row])
	return out, nil
}

// InjectUpset flips a burst of `width` physically adjacent columns starting
// at col in the given row — a multi-bit soft-error event (particle strike).
// Returns the columns flipped. Combined with columnOf's interleaved layout,
// this shows why bit interleaving turns one spatial burst into single-bit
// errors in several words (§2: "bit-interleaving is used to reduce the
// probability of upsetting two bits in one word").
func (a *BitArray) InjectUpset(row, col, width int) ([]int, error) {
	if err := a.check(row, 0); err != nil {
		return nil, err
	}
	if col < 0 || width < 1 || col+width > a.cfg.Cols {
		return nil, fmt.Errorf("sram: upset [%d,%d) outside row of %d columns", col, col+width, a.cfg.Cols)
	}
	flipped := make([]int, 0, width)
	for c := col; c < col+width; c++ {
		a.bits[row][c] = !a.bits[row][c]
		flipped = append(flipped, c)
	}
	return flipped, nil
}

// WordOfColumn returns which interleaved word a physical column belongs to.
func (a *BitArray) WordOfColumn(col int) int { return col % a.cfg.Interleave }
