package sram

import "fmt"

// Event identifies one circuit-level activity in the array or its periphery.
// Composite operations (a read access, an RMW) are sequences of these; the
// controllers in internal/core record composites, and the energy model in
// this package prices the resulting event mix.
type Event uint8

const (
	// EvPrecharge charges the read bit lines before a read (Figure 2 step 1).
	EvPrecharge Event = iota
	// EvRowRead asserts a read word line and discharges RBLs through the
	// read stacks of every cell in the row (Figure 2 step 2).
	EvRowRead
	// EvSense latches the column values at the bottom of the RBLs
	// (Figure 2 step 3).
	EvSense
	// EvOutputMux routes the selected columns to the data output,
	// discarding half-selected columns (read path only).
	EvOutputMux
	// EvWritebackMux loads write drivers: selected columns from Data-in,
	// half-selected columns from the read latches (Figure 2 step 4).
	EvWritebackMux
	// EvWriteDrive drives WBL/WBLB with the merged row (Figure 2 step 4).
	EvWriteDrive
	// EvRowWrite asserts the write word line, committing the row
	// (Figure 2 step 5).
	EvRowWrite
	// EvSetBufRead reads the Set-Buffer (small latch structure).
	EvSetBufRead
	// EvSetBufWrite writes the Set-Buffer.
	EvSetBufWrite
	// EvTagCompare probes the Tag-Buffer comparators in the controller.
	EvTagCompare
	// EvSilentCompare compares old vs new Set-Buffer content to detect
	// silent writes (§4.1).
	EvSilentCompare

	numEvents
)

var eventNames = [numEvents]string{
	"precharge", "row-read", "sense", "output-mux", "writeback-mux",
	"write-drive", "row-write", "setbuf-read", "setbuf-write",
	"tag-compare", "silent-compare",
}

// String names the event.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Events returns every defined event, in order.
func Events() []Event {
	out := make([]Event, numEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// ArrayConfig describes one SRAM macro: the data array of one cache.
type ArrayConfig struct {
	Cell CellKind
	// Rows and Cols give the logical mat dimensions (bits). For a cache,
	// Rows = sets and Cols = ways * blockBits when one set occupies one row,
	// which is the organization the Set-Buffer scheme assumes.
	Rows int
	Cols int
	// Interleave is the bit-interleaving degree: how many words share a
	// physical row (§2). Interleave > 1 with 8T cells is what forces RMW.
	Interleave int
	// Subarrays is the number of independently addressable banks the mat is
	// broken into (used by the LocalRMW ablation).
	Subarrays int
}

// Validate checks the configuration.
func (c ArrayConfig) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("sram: non-positive array dimensions %dx%d", c.Rows, c.Cols)
	case c.Interleave <= 0:
		return fmt.Errorf("sram: non-positive interleave %d", c.Interleave)
	case c.Subarrays <= 0:
		return fmt.Errorf("sram: non-positive subarray count %d", c.Subarrays)
	case c.Cols%c.Interleave != 0:
		return fmt.Errorf("sram: columns %d not divisible by interleave %d", c.Cols, c.Interleave)
	case c.Rows%c.Subarrays != 0:
		return fmt.Errorf("sram: rows %d not divisible by subarrays %d", c.Rows, c.Subarrays)
	}
	return nil
}

// Bits returns the array capacity in bits.
func (c ArrayConfig) Bits() int { return c.Rows * c.Cols }

// NeedsRMW reports whether partial-row writes require read-modify-write:
// true for bit-interleaved 8T arrays (the paper's premise), false for 6T
// (half-selected cells tolerate the read bias) and for non-interleaved
// word-granularity arrays (Chang et al.).
func (c ArrayConfig) NeedsRMW() bool {
	return c.Cell == EightT && c.Interleave > 1
}

// Array is an event ledger over one SRAM macro.
type Array struct {
	cfg    ArrayConfig
	counts [numEvents]uint64
}

// NewArray validates cfg and returns an Array.
func NewArray(cfg ArrayConfig) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Array{cfg: cfg}, nil
}

// Config returns the array configuration.
func (a *Array) Config() ArrayConfig { return a.cfg }

// Record adds n occurrences of event e.
func (a *Array) Record(e Event, n uint64) { a.counts[e] += n }

// Count returns the number of recorded occurrences of e.
func (a *Array) Count(e Event) uint64 { return a.counts[e] }

// Reset zeroes all counters.
func (a *Array) Reset() { a.counts = [numEvents]uint64{} }

// Counts returns a copy of the event ledger indexed by Event, for
// checkpoint serialization.
func (a *Array) Counts() [numEvents]uint64 { return a.counts }

// RestoreCounts replaces the event ledger with one captured by Counts.
func (a *Array) RestoreCounts(counts [numEvents]uint64) { a.counts = counts }

// NumEvents is the length of the ledger returned by Counts.
const NumEvents = numEvents

// AddCounts accumulates other's event counts into a. It is the ledger-merge
// primitive behind set-sharded simulation: per-shard arrays of the same
// configuration sum into the exact event mix a serial run would have
// recorded, because every event is attributed to the set (row) that caused
// it and sets are partitioned across shards.
func (a *Array) AddCounts(other *Array) {
	for i := range a.counts {
		a.counts[i] += other.counts[i]
	}
}

// Composite operations. Each mirrors a sequence described in §2 / Figure 2.

// ReadAccess records a full array read: precharge, row read, sense, and
// output multiplexing of the selected columns.
func (a *Array) ReadAccess() {
	a.Record(EvPrecharge, 1)
	a.Record(EvRowRead, 1)
	a.Record(EvSense, 1)
	a.Record(EvOutputMux, 1)
}

// RMWReadPhase records the read half of a read-modify-write: identical to a
// read access except the output mux does not fire ("in this phase of RMW,
// multiplexers do not route data to the output") — the data lands in the
// write-back latches instead.
func (a *Array) RMWReadPhase() {
	a.Record(EvPrecharge, 1)
	a.Record(EvRowRead, 1)
	a.Record(EvSense, 1)
}

// RMWWritePhase records the write half of a read-modify-write: the
// write-back mux merges Data-in with the latched row, write drivers fire,
// and the write word line commits the row.
func (a *Array) RMWWritePhase() {
	a.Record(EvWritebackMux, 1)
	a.Record(EvWriteDrive, 1)
	a.Record(EvRowWrite, 1)
}

// RMW records a complete read-modify-write (both phases).
func (a *Array) RMW() {
	a.RMWReadPhase()
	a.RMWWritePhase()
}

// DirectWrite records a write that does not need the read phase: a 6T write,
// or a word-granularity write in a non-interleaved array.
func (a *Array) DirectWrite() {
	a.Record(EvWriteDrive, 1)
	a.Record(EvRowWrite, 1)
}

// ArrayAccesses returns the paper's "cache access" count: operations that
// occupy the SRAM array — row reads plus row writes. This is the quantity
// Figures 9-11 report reductions of.
func (a *Array) ArrayAccesses() uint64 {
	return a.counts[EvRowRead] + a.counts[EvRowWrite]
}

// ReadPortBusy returns how many operations occupied the read port (row
// reads: both demand reads and RMW read phases).
func (a *Array) ReadPortBusy() uint64 { return a.counts[EvRowRead] }

// WritePortBusy returns how many operations occupied the write port.
func (a *Array) WritePortBusy() uint64 { return a.counts[EvRowWrite] }
