package sram

import (
	"math"
	"testing"
)

func newModel(t *testing.T) *EnergyModel {
	t.Helper()
	m, err := NewEnergyModel(baseConfig(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewEnergyModelValidation(t *testing.T) {
	if _, err := NewEnergyModel(ArrayConfig{}, 1.0); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewEnergyModel(baseConfig(), 0); err == nil {
		t.Fatal("zero Vdd accepted")
	}
}

func TestEventEnergiesPositive(t *testing.T) {
	m := newModel(t)
	for _, e := range Events() {
		if en := m.EventEnergy(e); en <= 0 || math.IsNaN(en) {
			t.Errorf("event %v energy = %v", e, en)
		}
	}
}

func TestRelativeCosts(t *testing.T) {
	m := newModel(t)
	// RMW must cost more than a read (it is a read phase plus a write).
	if m.RMWEnergy() <= m.ReadEnergy() {
		t.Errorf("RMW %.3e <= read %.3e", m.RMWEnergy(), m.ReadEnergy())
	}
	// The Set-Buffer must be far cheaper than an array read — this is the
	// §5.5 power argument for WG+RB.
	if ratio := m.SetBufferEnergy() / m.ReadEnergy(); ratio > 0.05 {
		t.Errorf("Set-Buffer / read energy = %.3f, want < 0.05", ratio)
	}
	// A row operation dominates a tag compare.
	if m.EventEnergy(EvTagCompare) >= m.EventEnergy(EvRowRead) {
		t.Error("tag compare costs as much as a row read")
	}
}

func TestDynamicEnergyAccumulates(t *testing.T) {
	m := newModel(t)
	a, _ := NewArray(baseConfig())
	if m.DynamicEnergy(a) != 0 {
		t.Fatal("fresh array has nonzero energy")
	}
	a.ReadAccess()
	one := m.DynamicEnergy(a)
	if math.Abs(one-m.ReadEnergy()) > 1e-20 {
		t.Fatalf("one read = %.3e, ReadEnergy = %.3e", one, m.ReadEnergy())
	}
	a.ReadAccess()
	if two := m.DynamicEnergy(a); math.Abs(two-2*one) > 1e-20 {
		t.Fatalf("two reads = %.3e, want %.3e", two, 2*one)
	}
}

func TestVoltageScaling(t *testing.T) {
	m := newModel(t)
	low, err := m.AtVoltage(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Full-swing events scale as V^2.
	hi := m.EventEnergy(EvRowWrite)
	lo := low.EventEnergy(EvRowWrite)
	if math.Abs(lo/hi-0.25) > 1e-9 {
		t.Errorf("row-write energy scaled by %.4f, want 0.25", lo/hi)
	}
	if _, err := m.AtVoltage(-1); err == nil {
		t.Fatal("negative voltage accepted")
	}
}

func TestLeakageScalesWithBitsAndVoltage(t *testing.T) {
	m := newModel(t)
	p1 := m.LeakagePower()
	if p1 <= 0 {
		t.Fatal("non-positive leakage")
	}
	small := baseConfig()
	small.Rows /= 2
	ms, _ := NewEnergyModel(small, 1.0)
	if math.Abs(ms.LeakagePower()/p1-0.5) > 1e-9 {
		t.Errorf("leakage should halve with half the bits")
	}
	low, _ := m.AtVoltage(0.5)
	if low.LeakagePower() >= p1 {
		t.Error("leakage did not drop with voltage")
	}
}

func TestSubarraysShortenBitlines(t *testing.T) {
	flat := baseConfig()
	flat.Subarrays = 1
	banked := baseConfig()
	banked.Subarrays = 8
	mf, _ := NewEnergyModel(flat, 1.0)
	mb, _ := NewEnergyModel(banked, 1.0)
	if mb.ReadEnergy() >= mf.ReadEnergy() {
		t.Errorf("banked read %.3e >= flat read %.3e; sub-arrays should cut bit-line energy",
			mb.ReadEnergy(), mf.ReadEnergy())
	}
}

func TestEnergyPerOpAt(t *testing.T) {
	if got := EnergyPerOpAt(4.0, 1.0, 0.5); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("EnergyPerOpAt = %v, want 1.0", got)
	}
}

func TestNineTCellProfile(t *testing.T) {
	// The 9T near-threshold cell: deeper Vmin than 8T, one more transistor,
	// the same decoupled read port, a small area adder at every node.
	if NineT.VminVolts() >= EightT.VminVolts() {
		t.Fatalf("9T Vmin %.2f not below 8T Vmin %.2f", NineT.VminVolts(), EightT.VminVolts())
	}
	if NineT.Transistors() != 9 || NineT.ReadPorts() != 1 {
		t.Fatalf("9T cell: %d transistors, %d read ports", NineT.Transistors(), NineT.ReadPorts())
	}
	for _, node := range []int{65, 45, 32, 22} {
		nine, err := NineT.AreaUm2(node)
		if err != nil {
			t.Fatal(err)
		}
		eight, err := EightT.AreaUm2(node)
		if err != nil {
			t.Fatal(err)
		}
		if nine <= eight {
			t.Errorf("%dnm: 9T area %.3f not above 8T %.3f", node, nine, eight)
		}
	}
}

func TestNineTEnergyScaling(t *testing.T) {
	cfg := baseConfig()
	cfg.Cell = EightT
	eight, err := NewEnergyModel(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cell = SixT
	six, err := NewEnergyModel(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cell = NineT
	nine, err := NewEnergyModel(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 6T and 8T share the baseline figures exactly — adding the 9T variant
	// must not reprice a single existing artifact.
	if six.ReadEnergy() != eight.ReadEnergy() || six.LeakagePerCellWatts != eight.LeakagePerCellWatts {
		t.Fatalf("6T/8T baselines diverged: read %.3e vs %.3e", six.ReadEnergy(), eight.ReadEnergy())
	}
	// The 9T trade (arXiv:1812.10011): ~10% heavier read bit line, ~45% less
	// per-cell static power.
	if r := nine.CBitlinePerCell / eight.CBitlinePerCell; math.Abs(r-1.10) > 1e-9 {
		t.Errorf("9T bitline cap ratio = %.3f, want 1.10", r)
	}
	if r := nine.LeakagePerCellWatts / eight.LeakagePerCellWatts; math.Abs(r-0.55) > 1e-9 {
		t.Errorf("9T leakage ratio = %.3f, want 0.55", r)
	}
	if nine.ReadEnergy() <= eight.ReadEnergy() {
		t.Errorf("9T read %.3e not above 8T read %.3e", nine.ReadEnergy(), eight.ReadEnergy())
	}
}
