// Package mem implements a sparse byte-addressable shadow memory.
//
// The simulator needs a memory image for two reasons: the cache model holds
// real line data (so write-backs and fills move actual bytes), and silent
// write detection (paper §3, Figure 5) must compare the value being stored
// with the value already present. Memory is sparse — SPEC-like traces touch
// tiny, scattered fractions of a 48-bit space — so storage is a map of
// fixed-size chunks, with unbacked bytes reading as zero.
package mem

import (
	"encoding/binary"
	"sort"
)

// ChunkSize is the granularity of backing allocation, in bytes.
const ChunkSize = 64

// Memory is a sparse byte store. The zero value is not usable; call New.
type Memory struct {
	chunks map[uint64]*[ChunkSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{chunks: make(map[uint64]*[ChunkSize]byte)}
}

func (m *Memory) chunkFor(addr uint64, create bool) (*[ChunkSize]byte, uint64) {
	base := addr &^ uint64(ChunkSize-1)
	c := m.chunks[base]
	if c == nil && create {
		c = new([ChunkSize]byte)
		m.chunks[base] = c
	}
	return c, addr - base
}

// LoadByte returns the byte at addr (zero if unbacked).
func (m *Memory) LoadByte(addr uint64) byte {
	c, off := m.chunkFor(addr, false)
	if c == nil {
		return 0
	}
	return c[off]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	c, off := m.chunkFor(addr, true)
	c[off] = b
}

// Read copies len(dst) bytes starting at addr into dst.
func (m *Memory) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		c, off := m.chunkFor(addr, false)
		n := ChunkSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		if c == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst, c[off:int(off)+n])
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// Write copies src into memory starting at addr.
func (m *Memory) Write(addr uint64, src []byte) {
	for len(src) > 0 {
		c, off := m.chunkFor(addr, true)
		n := copy(c[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// ReadWord returns size bytes at addr as a little-endian integer.
// size must be 1, 2, 4, or 8.
func (m *Memory) ReadWord(addr uint64, size uint8) uint64 {
	var buf [8]byte
	m.Read(addr, buf[:size])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteWord stores the low size bytes of data at addr, little-endian.
func (m *Memory) WriteWord(addr uint64, size uint8, data uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], data)
	m.Write(addr, buf[:size])
}

// WouldBeSilent reports whether writing data (size bytes) at addr would leave
// memory unchanged — the definition of a silent store (Lepak & Lipasti).
func (m *Memory) WouldBeSilent(addr uint64, size uint8, data uint64) bool {
	mask := ^uint64(0)
	if size < 8 {
		mask = 1<<(8*size) - 1
	}
	return m.ReadWord(addr, size) == data&mask
}

// Bases returns the base address of every backed chunk in ascending order.
// Checkpoint serialization needs a deterministic iteration order; map range
// order would make snapshot bytes differ between identical states.
func (m *Memory) Bases() []uint64 {
	bases := make([]uint64, 0, len(m.chunks))
	for base := range m.chunks {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases
}

// FootprintBytes returns the number of backed bytes.
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.chunks)) * ChunkSize
}

// Clone returns a deep copy of the memory image. Used by correctness property
// tests to run two controllers from identical initial state.
func (m *Memory) Clone() *Memory {
	out := New()
	for base, c := range m.chunks {
		dup := *c
		out.chunks[base] = &dup
	}
	return out
}

// Equal reports whether two memories hold the same image (unbacked bytes
// compare as zero, so a chunk of zeros equals an absent chunk).
func (m *Memory) Equal(other *Memory) bool {
	return m.coveredBy(other) && other.coveredBy(m)
}

func (m *Memory) coveredBy(other *Memory) bool {
	for base, c := range m.chunks {
		oc := other.chunks[base]
		if oc == nil {
			if *c != ([ChunkSize]byte{}) {
				return false
			}
			continue
		}
		if *c != *oc {
			return false
		}
	}
	return true
}
