package mem

import (
	"testing"
	"testing/quick"
)

func TestUnbackedReadsZero(t *testing.T) {
	m := New()
	if m.LoadByte(0xdeadbeef) != 0 {
		t.Fatal("unbacked byte nonzero")
	}
	if m.ReadWord(1<<40, 8) != 0 {
		t.Fatal("unbacked word nonzero")
	}
}

func TestByteRoundTrip(t *testing.T) {
	m := New()
	m.StoreByte(100, 0xab)
	if got := m.LoadByte(100); got != 0xab {
		t.Fatalf("ReadByte = %#x", got)
	}
	if got := m.LoadByte(101); got != 0 {
		t.Fatalf("neighbor byte = %#x", got)
	}
}

func TestWordRoundTripAllSizes(t *testing.T) {
	m := New()
	for _, size := range []uint8{1, 2, 4, 8} {
		addr := uint64(0x1000) + uint64(size)*16
		data := uint64(0x1122334455667788)
		m.WriteWord(addr, size, data)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		if got := m.ReadWord(addr, size); got != data&mask {
			t.Errorf("size %d: got %#x want %#x", size, got, data&mask)
		}
	}
}

func TestCrossChunkAccess(t *testing.T) {
	m := New()
	// Straddle the 64-byte chunk boundary at address 64.
	m.WriteWord(60, 8, 0x0102030405060708)
	if got := m.ReadWord(60, 8); got != 0x0102030405060708 {
		t.Fatalf("cross-chunk word = %#x", got)
	}
	if got := m.LoadByte(63); got != 0x05 {
		t.Fatalf("byte 63 = %#x", got)
	}
	if got := m.LoadByte(64); got != 0x04 {
		t.Fatalf("byte 64 = %#x", got)
	}
}

func TestBulkReadWrite(t *testing.T) {
	m := New()
	src := make([]byte, 300)
	for i := range src {
		src[i] = byte(i)
	}
	m.Write(1000, src)
	dst := make([]byte, 300)
	m.Read(1000, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %#x want %#x", i, dst[i], src[i])
		}
	}
	// Partial overlap with unbacked space reads zeros.
	far := make([]byte, 10)
	m.Read(1<<30, far)
	for _, b := range far {
		if b != 0 {
			t.Fatal("unbacked bulk read nonzero")
		}
	}
}

func TestWouldBeSilent(t *testing.T) {
	m := New()
	if !m.WouldBeSilent(0x500, 4, 0) {
		t.Fatal("writing zero to unbacked memory should be silent")
	}
	m.WriteWord(0x500, 4, 42)
	if !m.WouldBeSilent(0x500, 4, 42) {
		t.Fatal("rewrite of same value not silent")
	}
	if m.WouldBeSilent(0x500, 4, 43) {
		t.Fatal("different value reported silent")
	}
	// High bits beyond the access size must be ignored.
	if !m.WouldBeSilent(0x500, 4, 42|0xff00000000) {
		t.Fatal("high garbage bits broke silence check")
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.FootprintBytes() != 0 {
		t.Fatal("fresh memory has footprint")
	}
	m.StoreByte(0, 1)
	m.StoreByte(63, 1) // same chunk
	if m.FootprintBytes() != ChunkSize {
		t.Fatalf("footprint = %d", m.FootprintBytes())
	}
	m.StoreByte(64, 1) // next chunk
	if m.FootprintBytes() != 2*ChunkSize {
		t.Fatalf("footprint = %d", m.FootprintBytes())
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	m.WriteWord(8, 8, 7)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.WriteWord(8, 8, 9)
	if m.ReadWord(8, 8) != 7 {
		t.Fatal("clone mutation leaked into original")
	}
	if m.Equal(c) {
		t.Fatal("diverged memories compare equal")
	}
}

func TestEqualTreatsZeroChunksAsAbsent(t *testing.T) {
	a, b := New(), New()
	a.StoreByte(128, 0) // allocates a chunk of zeros
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("zero chunk should equal absent chunk")
	}
	a.StoreByte(128, 1)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("distinct memories equal")
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	sizes := []uint8{1, 2, 4, 8}
	f := func(addr, data uint64, sel uint8) bool {
		size := sizes[sel&3]
		addr &= 1<<40 - 1 // keep map small-ish per run
		m := New()
		m.WriteWord(addr, size, data)
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return m.ReadWord(addr, size) == data&mask && m.WouldBeSilent(addr, size, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
