// Halfselect: demonstrate the circuit hazard the whole paper exists to
// manage, on the bit-level array model.
//
// A bit-interleaved 8T row holds four words. Writing one word while naively
// asserting the write word line (no read-modify-write) destroys the
// half-selected neighbours; the RMW sequence — read row to latches, merge,
// write full row — keeps them intact. The same interleaving is what lets
// per-word SEC-DED ECC survive a multi-bit particle strike, which is why
// the arrays are interleaved in the first place (§2).
//
// This example uses internal/sram directly: the bit-level model is part of
// the research harness rather than the simulator's public surface.
package main

import (
	"fmt"
	"log"

	"cache8t/internal/sram"
)

func bits(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = v>>i&1 == 1
	}
	return out
}

func word(bs []bool) uint64 {
	var v uint64
	for i, b := range bs {
		if b {
			v |= 1 << i
		}
	}
	return v
}

func main() {
	log.SetFlags(0)

	cfg := sram.ArrayConfig{
		Cell: sram.EightT, Rows: 4, Cols: 32, Interleave: 4, Subarrays: 1,
	}
	vals := []uint64{0x12, 0x34, 0x56, 0x78}

	fill := func() *sram.BitArray {
		arr, err := sram.NewBitArray(cfg, 1)
		if err != nil {
			log.Fatal(err)
		}
		for w, v := range vals {
			if err := arr.ReadRowToLatches(0); err != nil {
				log.Fatal(err)
			}
			if err := arr.WriteWordRMW(0, w, bits(v, 8)); err != nil {
				log.Fatal(err)
			}
		}
		return arr
	}
	show := func(arr *sram.BitArray, label string) {
		fmt.Printf("%-28s", label)
		for w := 0; w < 4; w++ {
			got, err := arr.ReadWord(0, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" w%d=%#04x", w, word(got))
		}
		fmt.Println()
	}

	fmt.Println("one 8T row, 4-way bit-interleaved, words written 0x12 0x34 0x56 0x78")
	fmt.Println()

	// Naive partial-row write: word 1 <- 0xFF without RMW.
	naive := fill()
	if err := naive.WriteWordUnsafe(0, 1, bits(0xff, 8)); err != nil {
		log.Fatal(err)
	}
	show(naive, "naive write w1=0xff:")
	fmt.Println("  -> half-selected words 0, 2, 3 destroyed (column-selection issue)")
	fmt.Println()

	// The RMW sequence the paper's Figure 2 describes.
	safe := fill()
	if err := safe.ReadRowToLatches(0); err != nil { // 1-3: precharge, RWL, latch
		log.Fatal(err)
	}
	if err := safe.WriteWordRMW(0, 1, bits(0xff, 8)); err != nil { // 4-5: merge, WWL
		log.Fatal(err)
	}
	show(safe, "RMW write w1=0xff:")
	fmt.Println("  -> neighbours intact; cost: one extra row read per write (the paper's tax)")
	fmt.Println()

	// Why interleave at all: a 4-bit particle strike vs per-word SEC-DED.
	struck := fill()
	codes := make([]sram.ECCWord, 4)
	for w, v := range vals {
		codes[w] = sram.ECCEncode(v)
	}
	if _, err := struck.InjectUpset(0, 8, 4); err != nil {
		log.Fatal(err)
	}
	show(struck, "after 4-bit burst upset:")
	ok := true
	for w, v := range vals {
		stored, err := struck.ReadWord(0, w)
		if err != nil {
			log.Fatal(err)
		}
		code := codes[w]
		code.Data = word(stored)
		got, status := sram.ECCDecode(code)
		if got != v || status == sram.ECCDetected {
			ok = false
		}
	}
	fmt.Printf("  -> per-word SEC-DED recovery: %v (each word took exactly one flip)\n", ok)
	fmt.Println()
	o, err := sram.BurstImpact(1, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without interleaving the same burst puts %d flips in one word — uncorrectable: %v\n",
		o.MaxBitsInWord, !o.Correctable)
	fmt.Println("interleaving is mandatory for soft errors; RMW is its price; WG/WG+RB refund most of it.")
}
