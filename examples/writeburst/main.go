// Writeburst: watch Write Grouping eat a write-intensive kernel.
//
// memset is the paper's best case — a pure WW stream where consecutive
// stores land in the same cache set three times out of four (8-byte stores,
// 32-byte blocks). saxpy is the Read-Bypassing case: an in-place
// read-modify-write sweep where every read chases the write that just
// buffered its set. This example traces both kernels on the pinlite VM and
// replays them under every controller.
package main

import (
	"fmt"
	"log"
	"strings"

	"cache8t"
)

func main() {
	log.SetFlags(0)

	controllers := []string{"conventional", "rmw", "wg", "wgrb"}
	for _, kernel := range []string{"memset", "saxpy"} {
		accs, err := cache8t.TraceKernel(kernel, 0)
		if err != nil {
			log.Fatal(err)
		}
		var writes int
		for _, a := range accs {
			if a.Kind == cache8t.Write {
				writes++
			}
		}
		fmt.Printf("kernel %s: %d accesses (%d writes)\n", kernel, len(accs), writes)

		var baseline cache8t.Result
		for _, ctrl := range controllers {
			cfg := cache8t.DefaultConfig()
			cfg.Controller = ctrl
			res, err := cache8t.Replay(cfg, accs)
			if err != nil {
				log.Fatal(err)
			}
			if ctrl == "rmw" {
				baseline = res
			}
			line := fmt.Sprintf("  %-13s %6d array accesses", res.Controller, res.ArrayAccesses())
			if ctrl == "wg" || ctrl == "wgrb" {
				line += fmt.Sprintf("  (%.1f%% below RMW; %d grouped, %d bypassed)",
					res.ReductionVs(baseline)*100, res.GroupedWrites, res.BypassedReads)
			}
			fmt.Println(line)
		}
		fmt.Println(strings.Repeat("-", 72))
	}

	fmt.Println("\nmemset shows the grouping bound: 4 stores per 32B block collapse to")
	fmt.Println("one row read + one row write; saxpy shows bypassing: the interleaved")
	fmt.Println("reads that would force premature write-backs under WG are served from")
	fmt.Println("the Set-Buffer under WG+RB.")
}
