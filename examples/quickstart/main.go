// Quickstart: build an 8T-cache system, run one of the bundled SPEC-like
// workloads under the paper's WG+RB controller, and print the headline
// metric — cache access frequency reduction versus the RMW baseline.
package main

import (
	"fmt"
	"log"

	"cache8t"
)

func main() {
	log.SetFlags(0)

	cfg := cache8t.DefaultConfig() // 64KB/4-way/32B, WG+RB controller
	const (
		bench = "bwaves"
		seed  = 1
		n     = 500_000
	)

	technique, baseline, err := cache8t.Compare(cfg, bench, seed, n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload        %s (%d accesses)\n", bench, n)
	fmt.Printf("baseline (RMW)  %d array accesses\n", baseline.ArrayAccesses())
	fmt.Printf("WG+RB           %d array accesses\n", technique.ArrayAccesses())
	fmt.Printf("reduction       %.1f%%  (paper: up to 47%% for bwaves under WG, 33%% mean under WG+RB)\n\n",
		technique.ReductionVs(baseline)*100)

	fmt.Printf("grouped writes  %d of %d writes joined a Set-Buffer group\n",
		technique.GroupedWrites, technique.Writes)
	fmt.Printf("silent writes   %d detected (write-backs elided via the Dirty bit)\n",
		technique.SilentWrites)
	fmt.Printf("bypassed reads  %d served from the Set-Buffer instead of the array\n",
		technique.BypassedReads)

	// Feeding accesses by hand works too: the Fig. 1 mechanics in five lines.
	sys, err := cache8t.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Access(cache8t.Access{Kind: cache8t.Write, Addr: 0x40, Size: 8, Data: 7}); err != nil {
		log.Fatal(err)
	}
	v, err := sys.Access(cache8t.Access{Kind: cache8t.Read, Addr: 0x40, Size: 8})
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Finalize()
	fmt.Printf("\nmanual demo     read back %d; the read was served by the Set-Buffer (%d bypass)\n",
		v, res.BypassedReads)
}
