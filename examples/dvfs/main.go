// DVFS sweep: why 8T cells at all.
//
// The paper's §1 motivation is that the cache's minimum reliable voltage
// decides how low DVFS can go, and 6T caches wall that off around 0.7 V
// while 8T cells keep working near 0.35 V. This example sweeps operating
// points for one workload and prints, per level, whether a 6T or 8T cache
// could run there and the modeled cache energy per access — making the
// "8T opens the low-power levels, WG+RB pays back the RMW tax" story
// visible in one table.
package main

import (
	"fmt"
	"log"
	"strings"

	"cache8t"
)

func main() {
	log.SetFlags(0)

	const (
		bench  = "mcf"
		seed   = 1
		n      = 300_000
		levels = 10
	)

	sweep := func(controller string) []cache8t.DVFSPoint {
		cfg := cache8t.DefaultConfig()
		cfg.Controller = controller
		points, err := cache8t.DVFSSweep(cfg, bench, seed, n, levels)
		if err != nil {
			log.Fatal(err)
		}
		return points
	}
	rmw := sweep("rmw")
	wgrb := sweep("wgrb")

	fmt.Printf("workload %s, %d accesses, %d DVFS levels\n\n", bench, n, levels)
	fmt.Printf("%8s %9s   %4s %4s   %16s %16s\n",
		"voltage", "freq", "6T", "8T", "RMW nJ/access", "WG+RB nJ/access")
	fmt.Println(strings.Repeat("-", 70))
	for i := range rmw {
		p := rmw[i]
		mark := func(ok bool) string {
			if ok {
				return "yes"
			}
			return "-"
		}
		rmwE, wgrbE := "unreachable", "unreachable"
		if p.EightTReachable {
			rmwE = fmt.Sprintf("%.4f", p.EnergyPerAccessNJ)
			wgrbE = fmt.Sprintf("%.4f", wgrb[i].EnergyPerAccessNJ)
		}
		fmt.Printf("%7.2fV %7.0fMHz   %4s %4s   %16s %16s\n",
			p.VoltageV, p.FreqMHz, mark(p.SixTReachable), mark(p.EightTReachable), rmwE, wgrbE)
	}

	// Summarize the two headline deltas.
	var floor6, floor8 cache8t.DVFSPoint
	for _, p := range rmw {
		if p.SixTReachable {
			floor6 = p
		}
		if p.EightTReachable {
			floor8 = p
		}
	}
	fmt.Printf("\n6T voltage floor: %.2fV — 8T floor: %.2fV\n", floor6.VoltageV, floor8.VoltageV)
	for i := range rmw {
		if rmw[i].VoltageV == floor8.VoltageV {
			saving := 1 - wgrb[i].EnergyPerAccessNJ/rmw[i].EnergyPerAccessNJ
			fmt.Printf("at the 8T floor, WG+RB spends %.1f%% less cache energy per access than RMW\n",
				saving*100)
		}
	}
}
