// Pintool: mirror the paper's methodology end to end.
//
// The paper (§5.1) uses Pin to instrument SPEC binaries and feeds the
// observed L1-D requests to a cache model. This example does the same with
// the repository's Pin substitute: it assembles a dot-product program for
// the pinlite VM, registers a memory-access hook (the analogue of a Pin
// analysis routine), and streams every observed access straight into two
// live cache systems — RMW baseline and WG+RB — while the program runs.
//
// It uses internal/pinlite directly: the instrumentation API is part of the
// research harness rather than the simulator's public surface.
package main

import (
	"fmt"
	"log"

	"cache8t"
	"cache8t/internal/pinlite"
	"cache8t/internal/trace"
)

// dotProduct computes sum(a[i]*b[i]) then rescales a in place — a loop nest
// with read streams, a reduction, and an in-place write sweep.
const dotProduct = `
; r1 = a, r2 = b, r3 = n (elements), r4 = acc
	li   r4, 0
	li   r5, 0              ; i
dot:
	shl  r6, r5, 3
	add  r7, r6, r1
	ld   r8, r7, 0          ; a[i]
	add  r9, r6, r2
	ld   r10, r9, 0         ; b[i]
	mul  r8, r8, r10
	add  r4, r4, r8
	addi r5, r5, 1
	blt  r5, r3, dot
	li   r5, 0              ; i
scale:
	shl  r6, r5, 3
	add  r7, r6, r1
	ld   r8, r7, 0
	shl  r8, r8, 1          ; a[i] *= 2
	st   r8, r7, 0
	addi r5, r5, 1
	blt  r5, r3, scale
	halt
`

func main() {
	log.SetFlags(0)

	prog, err := pinlite.Assemble(dotProduct)
	if err != nil {
		log.Fatal(err)
	}

	const (
		aBase = 0x10000
		bBase = 0x20000
		n     = 4096
	)
	machine := pinlite.NewMachine(prog)
	for i := 0; i < n; i++ {
		machine.Mem.WriteWord(aBase+uint64(i)*8, 8, uint64(i%9+1))
		machine.Mem.WriteWord(bBase+uint64(i)*8, 8, uint64(i%7+1))
	}
	machine.Regs[1] = aBase
	machine.Regs[2] = bBase
	machine.Regs[3] = n

	// Two systems consume the instrumented stream concurrently with
	// execution — exactly how the paper runs "all evaluations and
	// techniques in one run" (§5.1).
	newSys := func(controller string) *cache8t.System {
		cfg := cache8t.DefaultConfig()
		cfg.Controller = controller
		sys, err := cache8t.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	rmwSys := newSys("rmw")
	wgrbSys := newSys("wgrb")

	var observed int
	machine.AddMemHook(func(a trace.Access) {
		observed++
		pub := cache8t.Access{
			Kind: cache8t.AccessKind(a.Kind),
			Addr: a.Addr, Size: a.Size, Data: a.Data, Gap: a.Gap,
		}
		if _, err := rmwSys.Access(pub); err != nil {
			log.Fatal(err)
		}
		if _, err := wgrbSys.Access(pub); err != nil {
			log.Fatal(err)
		}
	})

	if err := machine.Run(0); err != nil {
		log.Fatal(err)
	}

	rmw := rmwSys.Finalize()
	wgrb := wgrbSys.Finalize()
	fmt.Printf("program retired %d instructions, %d memory accesses observed\n",
		machine.Instructions(), observed)
	fmt.Printf("dot product (acc register) = %d\n\n", machine.Regs[4])
	fmt.Printf("RMW    %6d array accesses\n", rmw.ArrayAccesses())
	fmt.Printf("WG+RB  %6d array accesses  (%.1f%% reduction; %d grouped writes, %d bypassed reads)\n",
		wgrb.ArrayAccesses(), wgrb.ReductionVs(rmw)*100, wgrb.GroupedWrites, wgrb.BypassedReads)
}
