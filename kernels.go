package cache8t

import (
	"fmt"

	"cache8t/internal/pinlite"
)

// Kernels returns the names of the bundled pinlite kernels — small programs
// executed on the instrumentation VM, the repository's stand-in for the
// paper's Pin methodology.
func Kernels() []string {
	ks := pinlite.Kernels()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name
	}
	return out
}

// TraceKernel executes the named bundled kernel on the instrumentation VM
// (up to budget instructions; 0 means unlimited) and returns its memory
// trace.
func TraceKernel(name string, budget uint64) ([]Access, error) {
	for _, k := range pinlite.Kernels() {
		if k.Name != name {
			continue
		}
		raw, err := k.Run(budget)
		if err != nil {
			return nil, err
		}
		out := make([]Access, len(raw))
		for i, a := range raw {
			out[i] = Access{
				Kind: AccessKind(a.Kind),
				Addr: a.Addr,
				Size: a.Size,
				Data: a.Data,
				Gap:  a.Gap,
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("cache8t: unknown kernel %q (have %v)", name, Kernels())
}

// Replay runs a recorded access slice through a fresh System built from cfg.
func Replay(cfg Config, accesses []Access) (Result, error) {
	sys, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	for _, a := range accesses {
		if _, err := sys.Access(a); err != nil {
			return Result{}, err
		}
	}
	return sys.Finalize(), nil
}
