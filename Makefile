# Development targets. `make check` is the default verify flow: vet plus the
# full test suite under the race detector — mandatory now that the execution
# engine makes the codebase concurrent. `make ci` mirrors
# .github/workflows/ci.yml exactly, so a green local run predicts a green PR.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build test vet race bench bench-core bench-shard bench-scale bench-hier check fmt-check regress regress-shard golden-update fuzz-smoke serve-smoke serve-golden-update cache-smoke crash-smoke coord-smoke hier-smoke hier-golden-update ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Hot-path throughput ledger: run the controller over the same binary trace
# materialized and streamed, verify identical results, append the pair to
# BENCH_core.json. A ratio drifting below 1.0 is a streaming-path regression.
bench-core:
	$(GO) run ./cmd/benchcore

# Same ledger plus the set-sharded driver over the same decode: appends a
# sharded entry (RMW, 4 shards) to BENCH_core.json. ShardedRatio > 1 means
# parallel replay wins; expect < 1 on single-core hosts.
bench-shard:
	$(GO) run ./cmd/benchcore -shards 4

# Shard-scaling sweep: streamed serial baseline plus the sharded driver at
# 1/2/4/8 shards, every point verified byte-identical to the baseline before
# its throughput is recorded. The entry carries gomaxprocs/num_cpu so
# sub-1.0 ratios on single-core hosts read as expected overhead, not
# regressions. CI runs this at a reduced N as a non-gating artifact
# (identity-checked, never speed-gated); the committed BENCH_core.json is
# appended to deliberately, at full N, on developer machines.
SCALE_N ?= 1000000
SCALE_OUT ?= BENCH_core.json
bench-scale:
	$(GO) run ./cmd/benchcore -scale 1,2,4,8 -n $(SCALE_N) -out $(SCALE_OUT)

# Two-level hierarchy throughput: the hier driver (WG L1 + bridge + RMW L2)
# over the same trace materialized and streamed, identity-verified, appended
# as a "hier"-tagged entry to BENCH_core.json.
bench-hier:
	$(GO) run ./cmd/benchcore -hier

check: build vet race

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Golden-result regression: re-run the paper's experiment matrix and diff
# against golden/*.json. Non-zero exit + per-metric diff table on drift.
regress:
	$(GO) run ./cmd/regress

# The same matrix set-sharded: goldens are shard-agnostic, so any drift here
# is a sharding-equivalence bug, not a numbers change.
regress-shard:
	$(GO) run ./cmd/regress -shards 4

# Regenerate the goldens after an intentional change to the reproduced
# numbers. Review the golden/ diff and commit it with the change that caused
# it (policy in README "Reproducing the paper").
golden-update:
	$(GO) run ./cmd/regress -update

fuzz-smoke:
	$(GO) test -fuzz=FuzzReader -fuzztime=$(FUZZTIME) -run='^$$' ./internal/trace
	$(GO) test -fuzz=FuzzBatcher -fuzztime=$(FUZZTIME) -run='^$$' ./internal/trace
	$(GO) test -fuzz=FuzzAssemble -fuzztime=$(FUZZTIME) -run='^$$' ./internal/pinlite
	$(GO) test -fuzz=FuzzJobSpec -fuzztime=$(FUZZTIME) -run='^$$' ./internal/server
	$(GO) test -fuzz=FuzzJournal -fuzztime=$(FUZZTIME) -run='^$$' ./internal/server
	$(GO) test -fuzz=FuzzDisk -fuzztime=$(FUZZTIME) -run='^$$' ./internal/rescache
	$(GO) test -fuzz=FuzzSweepSpec -fuzztime=$(FUZZTIME) -run='^$$' ./internal/coord

# End-to-end service gate: build sramd, start it on an ephemeral port,
# submit the pinned golden workload over HTTP, verify the returned artifact
# byte-for-byte against an in-process serial run AND against
# golden/serve.json, then SIGTERM the daemon and require a clean exit.
serve-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
		$(GO) build -o "$$tmp/sramd" ./cmd/sramd && \
		$(GO) run ./cmd/sramload -smoke -sramd "$$tmp/sramd"

# Regenerate golden/serve.json after an intentional change to the service
# artifact (same review-and-commit policy as golden-update).
serve-golden-update:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
		$(GO) build -o "$$tmp/sramd" ./cmd/sramd && \
		$(GO) run ./cmd/sramload -smoke -update -sramd "$$tmp/sramd"

# Result-cache gate: start sramd with a fresh disk CAS, submit the golden
# workload twice, and require miss-then-hit with byte-identical artifacts —
# hit ≡ miss ≡ in-process serial run ≡ golden/serve.json — plus /metrics
# counters that reflect exactly one miss and one memory-tier hit.
cache-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
		$(GO) build -o "$$tmp/sramd" ./cmd/sramd && \
		$(GO) run ./cmd/sramload -cache-smoke -sramd "$$tmp/sramd" -cache-dir "$$tmp/cas"

# Crash-recovery gate: start a journaled sramd, submit the golden workload
# with per-batch checkpointing, kill -9 mid-job, restart on the same journal
# dir, and require the job to survive under its id, resume from a
# checkpoint, and finish byte-identical to golden/serve.json. Also checks
# stale-lock takeover and the live-twin fail-fast.
crash-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
		$(GO) build -o "$$tmp/sramd" ./cmd/sramd && \
		$(GO) run ./cmd/sramload -crash-smoke -sramd "$$tmp/sramd" -journal-dir "$$tmp/journal"

# Distributed-mode chaos gate: 1 coordinator + 3 workers on ephemeral ports,
# a 12-point sweep embedding the golden workload, kill -9 one worker
# mid-sweep, and require redispatch, a merged ledger byte-identical to the
# serial in-process run, and the golden point matching golden/serve.json.
coord-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
		$(GO) build -o "$$tmp/sramd" ./cmd/sramd && \
		$(GO) run ./cmd/sramload -coord-smoke -sramd "$$tmp/sramd"

# Multi-level gate: start sramd, submit a hierarchy job (WG L1 over the
# default 256 KB RMW L2), verify the returned artifact byte-for-byte against
# an in-process serial hierarchy run AND against golden/hier-serve.json,
# then SIGTERM the daemon and require a clean exit.
hier-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
		$(GO) build -o "$$tmp/sramd" ./cmd/sramd && \
		$(GO) run ./cmd/sramload -hier-smoke -sramd "$$tmp/sramd"

# Regenerate golden/hier-serve.json after an intentional change to the
# hierarchy artifact (same review-and-commit policy as golden-update).
hier-golden-update:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
		$(GO) build -o "$$tmp/sramd" ./cmd/sramd && \
		$(GO) run ./cmd/sramload -hier-smoke -update -sramd "$$tmp/sramd"

ci: build vet fmt-check race regress regress-shard serve-smoke cache-smoke crash-smoke coord-smoke hier-smoke fuzz-smoke
