# Development targets. `make check` is the default verify flow: vet plus the
# full test suite under the race detector — mandatory now that the execution
# engine makes the codebase concurrent.

GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

check: build vet race
