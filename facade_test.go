package cache8t

import "testing"

func TestKernelsList(t *testing.T) {
	ks := Kernels()
	if len(ks) != 10 {
		t.Fatalf("got %d kernels: %v", len(ks), ks)
	}
}

func TestTraceKernelAndReplay(t *testing.T) {
	accs, err := TraceKernel("memset", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) == 0 {
		t.Fatal("empty kernel trace")
	}
	for _, a := range accs {
		if a.Kind != Write {
			t.Fatal("memset emitted a read")
		}
	}
	cfgWG := DefaultConfig()
	cfgWG.Controller = "wg"
	wg, err := Replay(cfgWG, accs)
	if err != nil {
		t.Fatal(err)
	}
	cfgRMW := DefaultConfig()
	cfgRMW.Controller = "rmw"
	rmw, err := Replay(cfgRMW, accs)
	if err != nil {
		t.Fatal(err)
	}
	// A pure sequential write burst: 4 words per 32 B block, so WG retires
	// each block with one fill + one write-back = 2 accesses per 4 writes,
	// against RMW's 8.
	if red := wg.ReductionVs(rmw); red < 0.70 || red > 0.80 {
		t.Errorf("memset WG reduction = %.3f, want ~0.75", red)
	}
	if _, err := TraceKernel("nope", 0); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestReplayRejectsBadAccess(t *testing.T) {
	if _, err := Replay(DefaultConfig(), []Access{{Kind: Read, Size: 5}}); err == nil {
		t.Fatal("bad size accepted")
	}
	bad := DefaultConfig()
	bad.Controller = "zzz"
	if _, err := Replay(bad, nil); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestDVFSSweep(t *testing.T) {
	points, err := DVFSSweep(DefaultConfig(), "mcf", 1, 20000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("got %d points", len(points))
	}
	sixReach, eightReach := 0, 0
	prevV := 2.0
	for _, p := range points {
		if p.VoltageV >= prevV {
			t.Errorf("voltages not descending: %.2f then %.2f", prevV, p.VoltageV)
		}
		prevV = p.VoltageV
		if p.SixTReachable {
			sixReach++
			if !p.EightTReachable {
				t.Error("point reachable by 6T but not 8T")
			}
		}
		if p.EightTReachable {
			eightReach++
			if p.EnergyPerAccessNJ <= 0 {
				t.Error("reachable point without energy")
			}
		}
	}
	if eightReach <= sixReach {
		t.Errorf("8T reaches %d levels, 6T %d — want strictly more", eightReach, sixReach)
	}
	// Energy per access must fall monotonically with voltage among
	// 8T-reachable points (leakage shrinks too in this model).
	prev := -1.0
	for _, p := range points {
		if !p.EightTReachable {
			continue
		}
		if prev > 0 && p.EnergyPerAccessNJ >= prev {
			t.Errorf("energy not falling with voltage: %.4f then %.4f", prev, p.EnergyPerAccessNJ)
		}
		prev = p.EnergyPerAccessNJ
	}
}

func TestDVFSSweepValidation(t *testing.T) {
	if _, err := DVFSSweep(DefaultConfig(), "mcf", 1, 100, 1); err == nil {
		t.Error("1 level accepted")
	}
	if _, err := DVFSSweep(DefaultConfig(), "nope", 1, 100, 4); err == nil {
		t.Error("unknown workload accepted")
	}
	bad := DefaultConfig()
	bad.Controller = "zzz"
	if _, err := DVFSSweep(bad, "mcf", 1, 100, 4); err == nil {
		t.Error("bad controller accepted")
	}
	bad = DefaultConfig()
	bad.Replacement = "mru"
	if _, err := DVFSSweep(bad, "mcf", 1, 100, 4); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestRunMix(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunMix(cfg, []string{"bwaves", "mcf"}, 1, 100, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads+res.Writes != 20000 {
		t.Fatalf("mix processed %d accesses", res.Reads+res.Writes)
	}
	if _, err := RunMix(cfg, []string{"nope"}, 1, 100, 10); err == nil {
		t.Fatal("unknown mix member accepted")
	}
	if _, err := RunMix(cfg, nil, 1, 100, 10); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestNoWriteAllocateKnob(t *testing.T) {
	alloc := DefaultConfig()
	alloc.Controller = "rmw"
	around := alloc
	around.NoWriteAllocate = true
	a, err := RunWorkload(alloc, "mcf", 1, 30000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(around, "mcf", 1, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if b.ArrayWrites >= a.ArrayWrites {
		t.Errorf("write-around array writes %d not below allocate %d", b.ArrayWrites, a.ArrayWrites)
	}
}
