// Command sramd is the simulation-as-a-service daemon: it serves the
// internal/server HTTP API — submit experiment specs and trace uploads,
// poll or stream job progress, fetch canonical run artifacts — on top of a
// bounded job queue executed through internal/engine.
//
// Usage:
//
//	sramd                                  # listen on 127.0.0.1:8344
//	sramd -listen :8344 -workers 8         # public, fixed worker pool
//	sramd -listen 127.0.0.1:0              # ephemeral port (printed on stdout)
//	sramd -queue 128 -max-body 512000000   # backpressure limits
//	sramd -job-timeout 5m -drain 30s       # per-job cap, shutdown deadline
//	sramd -cache-dir /var/cache/sramd      # persist the result cache (CAS)
//	sramd -cache-mem-bytes 134217728       # hot-tier budget (default 64 MiB)
//	sramd -cache-disk-bytes 2147483648     # CAS size cap (default 1 GiB)
//	sramd -no-cache                        # disable result caching entirely
//	sramd -journal-dir /var/lib/sramd      # durable jobs: survive a kill -9
//	sramd -checkpoint-every 4              # denser mid-job checkpoints
//	sramd -journal-retain 168h             # forget week-old finished jobs on restart
//	sramd -coordinator -peers http://a:8344,http://b:8344   # sweep coordinator
//	sramd -coordinator -probe-interval 5s  # active /healthz worker probing
//	sramd -pprof                           # mount /debug/pprof/ (off by default)
//	sramd -version
//
// Result caching is on by default (memory tier only; add -cache-dir for a
// persistent disk CAS shared with cmd/regress and cmd/sweep). A submission
// whose config hash is already cached completes instantly with
// `"cached": true` in its status; see the README "Result caching" section.
//
// -journal-dir makes jobs durable: state transitions are fsynced to an
// append-only journal, running jobs checkpoint their full controller state
// into the result cache, and a restarted daemon replays the journal — same
// job ids, same states, running jobs resumed from their latest checkpoint.
// The directory is locked per daemon (stale locks from a crash are taken
// over; a live twin fails fast). See DESIGN.md §12 and the README
// "Durability and crash recovery" section.
//
// -coordinator runs the distributed front half instead of a worker: the
// daemon serves the internal/coord sweep API (POST /v1/sweeps), decomposes
// each sweep into single-point jobs, fans them out over the sramd workers
// named by -peers (or registered later via POST /v1/workers), and merges the
// verified per-point artifacts into one canonical ledger. Failed, timed-out,
// or corrupt dispatches retry with jittered exponential backoff behind
// per-worker circuit breakers. With -journal-dir the sweep table survives a
// coordinator kill: unfinished sweeps resume on restart, with
// already-finished points served from the result cache. See DESIGN.md §13
// and the README "Distributed mode" section.
//
// The daemon prints exactly one line to stdout once it is serving —
// "sramd listening on http://ADDR" — which is what cmd/sramload's -sramd
// mode parses. SIGINT/SIGTERM begin a graceful shutdown: /readyz flips to
// 503, new submissions are refused, and in-flight jobs drain under the
// -drain deadline (past it they are cancelled). See DESIGN.md §10 and the
// README "Running as a service" section for the API and curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cache8t/internal/coord"
	"cache8t/internal/report"
	"cache8t/internal/rescache"
	"cache8t/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sramd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", "127.0.0.1:8344", "address to serve on (port 0 picks one)")
		workers     = flag.Int("workers", 0, "concurrent jobs (0 = one per CPU)")
		queueDepth  = flag.Int("queue", 0, "queued-job limit before 429s (0 = 64)")
		maxBody     = flag.Int64("max-body", 0, "max submission body bytes, spec + trace (0 = 256 MiB)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job run deadline (0 = none)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		spool       = flag.String("spool", "", "directory for spooled trace uploads (default: system temp)")
		cacheDir    = flag.String("cache-dir", "", "directory for the persistent result-cache CAS (default: memory-only)")
		cacheMem    = flag.Int64("cache-mem-bytes", 0, "result-cache memory-tier budget (0 = 64 MiB)")
		cacheDisk   = flag.Int64("cache-disk-bytes", 0, "result-cache disk CAS size cap (0 = 1 GiB)")
		noCache     = flag.Bool("no-cache", false, "disable result caching: every job simulates")
		journalDir  = flag.String("journal-dir", "", "directory for the durable job journal: jobs survive a daemon kill (default: off)")
		ckptEvery   = flag.Int("checkpoint-every", 16, "with -journal-dir, checkpoint running jobs every N batches (0 = journal only, no checkpoints)")
		jRetain     = flag.Duration("journal-retain", 0, "with -journal-dir, GC terminal jobs older than this window at startup compaction; live jobs are never aged out (0 = keep forever)")
		withPprof   = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/ (profiling; keep off on untrusted networks)")
		showVersion = flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")

		coordinator  = flag.Bool("coordinator", false, "serve the sweep-coordinator API instead of the worker job API")
		peers        = flag.String("peers", "", "coordinator: comma-separated sramd worker base URLs (more can join via POST /v1/workers)")
		dispatch     = flag.Int("dispatch", 0, "coordinator: concurrent point dispatches per sweep (0 = 4)")
		pointTimeout = flag.Duration("point-timeout", 0, "coordinator: one dispatch attempt's end-to-end deadline (0 = 2m)")
		pointRetries = flag.Int("point-retries", 0, "coordinator: dispatch attempts per point before the sweep fails (0 = 5)")
		sweepRate    = flag.Float64("sweep-rate", 0, "coordinator: sweep submissions per second per client (0 = unlimited)")
		sweepBurst   = flag.Int("sweep-burst", 0, "coordinator: per-client submission burst above -sweep-rate (0 = 4)")
		probeEvery   = flag.Duration("probe-interval", 0, "coordinator: actively probe each worker's /healthz at this interval, feeding its circuit breaker (0 = off; health comes only from dispatches)")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(report.Version("sramd"))
		return nil
	}

	if *journalDir != "" {
		if *noCache {
			return fmt.Errorf("-journal-dir requires the result cache (specs and checkpoints live in its disk CAS); drop -no-cache")
		}
		// The journal claims its directory exclusively: fail fast on an
		// unwritable path or a live twin daemon, take over a stale lock left
		// by a crash. Released on clean shutdown only.
		release, err := server.AcquireDirLock(*journalDir)
		if err != nil {
			return err
		}
		defer release()
		if *cacheDir == "" {
			// Durability needs a disk CAS; co-locate it with the journal so
			// one -journal-dir flag yields a fully durable daemon.
			*cacheDir = filepath.Join(*journalDir, "cas")
		}
	}
	var cache *rescache.Cache
	if !*noCache {
		var err error
		cache, err = rescache.Open(rescache.Config{
			Dir:       *cacheDir,
			MemBytes:  *cacheMem,
			DiskBytes: *cacheDisk,
		})
		if err != nil {
			return err
		}
		defer cache.Close()
		// Lock the CAS dir after Open: a fresh CAS dir must be empty when
		// Open first sees it, and Open's own errors already cover the
		// unwritable case. The lock adds live-twin detection.
		if *cacheDir != "" {
			release, err := server.AcquireDirLock(*cacheDir)
			if err != nil {
				return err
			}
			defer release()
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	var (
		handler  http.Handler
		shutdown func(context.Context) error
	)
	if *coordinator {
		var workerURLs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				workerURLs = append(workerURLs, p)
			}
		}
		c, err := coord.New(coord.Config{
			Workers:          workerURLs,
			DispatchParallel: *dispatch,
			PointTimeout:     *pointTimeout,
			PointAttempts:    *pointRetries,
			SweepRate:        *sweepRate,
			SweepBurst:       *sweepBurst,
			ProbeInterval:    *probeEvery,
			Cache:            cache,
			JournalDir:       *journalDir,
			Version:          report.GitSHA(),
		})
		if err != nil {
			return err
		}
		handler = c.Handler()
		shutdown = c.Shutdown
		log.Printf("coordinator mode: %d worker(s) registered", len(workerURLs))
	} else {
		srv, err := server.New(server.Config{
			Workers:         *workers,
			QueueDepth:      *queueDepth,
			MaxBodyBytes:    *maxBody,
			JobTimeout:      *jobTimeout,
			SpoolDir:        *spool,
			Cache:           cache,
			JournalDir:      *journalDir,
			CheckpointEvery: *ckptEvery,
			JournalRetain:   *jRetain,
		})
		if err != nil {
			return err
		}
		handler = srv.Handler()
		shutdown = srv.Shutdown
	}
	if *withPprof {
		// Wrap rather than mutate: the API handler (worker or coordinator)
		// keeps owning everything except the profiling prefix.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("profiling: net/http/pprof mounted at /debug/pprof/")
	}
	hs := &http.Server{Handler: handler}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	// The one stdout line tooling scrapes for the resolved address.
	fmt.Printf("sramd listening on http://%s\n", ln.Addr())
	log.Printf("%s", report.Version("sramd"))
	switch {
	case cache == nil:
		log.Printf("result cache disabled")
	case *cacheDir == "":
		log.Printf("result cache: memory-only")
	default:
		log.Printf("result cache: %s", *cacheDir)
	}
	switch {
	case *journalDir != "" && *coordinator:
		log.Printf("sweep journal: %s", *journalDir)
	case *journalDir != "":
		log.Printf("job journal: %s (checkpoint every %d batches)", *journalDir, *ckptEvery)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining (deadline %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := shutdown(dctx); err != nil {
		log.Printf("drain deadline exceeded; in-flight work cancelled")
	} else {
		log.Printf("drained cleanly")
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	return hs.Shutdown(hctx)
}
