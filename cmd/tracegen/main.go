// Command tracegen writes and inspects binary request traces (the .c8tt
// format of internal/trace).
//
// Usage:
//
//	tracegen -workload lbm -n 500000 -o lbm.c8tt      generate from a profile
//	tracegen -workload lbm -o lbm.c8tt.gz             gzip framing by suffix
//	tracegen -kernel memset -o memset.c8tt            trace a pinlite kernel
//	tracegen -inspect lbm.c8tt                        print summary stats
//	tracegen -inspect lbm.c8tt -dump 20               also dump first N records
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/pinlite"
	"cache8t/internal/report"
	"cache8t/internal/stats"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		workloadName = flag.String("workload", "", "bundled workload to generate from")
		kernelName   = flag.String("kernel", "", "pinlite kernel to trace: memset|memcpy|saxpy|reduce|matmul|chase|histogram|stencil|queue|fib")
		n            = flag.Int("n", 500_000, "accesses to generate (workloads) or instruction budget (kernels)")
		seed         = flag.Uint64("seed", 1, "workload seed")
		out          = flag.String("o", "", "output trace file")
		inspect      = flag.String("inspect", "", "trace file to summarize")
		dump         = flag.Int("dump", 0, "with -inspect, dump the first N records")
		reportPath   = flag.String("report", "", "write the generation artifact (canonical JSON) to this path")
	)
	showVersion := flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(report.Version("tracegen"))
		return
	}

	var count uint64
	var source string
	var err error
	switch {
	case *inspect != "":
		err = inspectTrace(*inspect, *dump)
	case *workloadName != "":
		source = "workload:" + *workloadName
		count, err = generateWorkload(*workloadName, *seed, *n, *out)
	case *kernelName != "":
		source = "kernel:" + *kernelName
		count, err = generateKernel(*kernelName, uint64(*n), *out)
	default:
		log.Fatal("need one of -workload, -kernel, or -inspect (see -h)")
	}
	if err != nil {
		log.Fatal(err)
	}
	if *reportPath != "" && source != "" {
		art := report.New("tracegen", *seed)
		art.SetConfig("source", source)
		art.SetConfig("n", *n)
		art.SetConfig("output", *out)
		art.SetMetric("accesses_written", float64(count))
		if err := report.WriteFile(*reportPath, art); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
}

func openOut(path string) (*os.File, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -o output path")
	}
	return os.Create(path)
}

func generateWorkload(name string, seed uint64, n int, out string) (uint64, error) {
	gen, err := workload.Stream(name, seed)
	if err != nil {
		return 0, err
	}
	f, err := openOut(out)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if strings.HasSuffix(out, ".txt") {
		accs := trace.Collect(trace.NewLimit(gen, uint64(n)), 0)
		if err := trace.WriteText(f, accs); err != nil {
			return 0, err
		}
		fmt.Printf("wrote %d accesses from %s to %s (text)\n", len(accs), name, out)
		return uint64(len(accs)), f.Close()
	}
	count, err := trace.WriteAllAuto(f, gen, n, trace.IsGzipPath(out))
	if err != nil {
		return count, err
	}
	fmt.Printf("wrote %d accesses from %s to %s\n", count, name, out)
	return count, f.Close()
}

func findKernel(name string) (pinlite.Kernel, error) {
	for _, k := range pinlite.Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	names := make([]string, 0)
	for _, k := range pinlite.Kernels() {
		names = append(names, k.Name)
	}
	return pinlite.Kernel{}, fmt.Errorf("unknown kernel %q (have %v)", name, names)
}

func generateKernel(name string, budget uint64, out string) (uint64, error) {
	k, err := findKernel(name)
	if err != nil {
		return 0, err
	}
	accs, err := k.Run(budget)
	if err != nil {
		return 0, err
	}
	f, err := openOut(out)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	count, err := trace.WriteAllAuto(f, trace.FromSlice(accs), 0, trace.IsGzipPath(out))
	if err != nil {
		return count, err
	}
	fmt.Printf("wrote %d accesses from kernel %s (%s) to %s\n", count, k.Name, k.Description, out)
	return count, f.Close()
}

func inspectTrace(path string, dump int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	reader, err := trace.NewAutoReader(f)
	if err != nil {
		return err
	}
	g := cache.MustGeometry(64*1024, 4, 32)
	var first []trace.Access
	an := core.Analyze(trace.Func(func() (trace.Access, bool) {
		a, ok := reader.Next()
		if ok && len(first) < dump {
			first = append(first, a)
		}
		return a, ok
	}), g, 0)
	if err := reader.Err(); err != nil {
		return err
	}
	t := stats.NewTable("Trace summary: "+path, "metric", "value")
	t.AddRowf("accesses", an.Stats.Accesses())
	t.AddRowf("reads", an.Stats.Reads)
	t.AddRowf("writes", an.Stats.Writes)
	t.AddRowf("instructions", an.Stats.Instructions)
	t.AddRowf("reads/instr", stats.Pct(an.Stats.ReadFrac()))
	t.AddRowf("writes/instr", stats.Pct(an.Stats.WriteFrac()))
	t.AddRowf("same-set consecutive (64KB/4w/32B)", stats.Pct(an.SameSetFrac()))
	t.AddRowf("silent writes", stats.Pct(an.SilentFrac()))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	for i, a := range first {
		fmt.Printf("%6d  %s\n", i, a)
	}
	return nil
}
