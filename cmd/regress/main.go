// Command regress is the golden-result regression harness: it re-runs the
// paper's headline experiment matrix (Figure 8 worked example, RMW
// inflation, Figures 9/10/11 reductions) and diffs the resulting artifacts
// against the checked-in golden/*.json baselines with per-metric tolerance
// bands. Any drift prints a per-metric diff table and exits non-zero, which
// is what lets CI promote "tests pass" to "the paper's numbers still hold".
//
// Usage:
//
//	regress                     diff all checks against golden/
//	regress fig9 fig10          only those checks
//	regress -update             regenerate the goldens intentionally
//	regress -full               show passing metrics too
//	regress -stream             rebuild from streamed traces (same numbers,
//	                            constant memory per benchmark)
//	regress -shards 4           set-sharded parallel simulation (same numbers;
//	                            CI proves sharded == serial goldens)
//	regress -bench              append engine serial-vs-parallel throughput
//	                            to BENCH_regress.json (perf trajectory)
//	regress -cache-dir DIR      memoize check artifacts in a persistent CAS
//	                            (shareable with sramd and sweep); repeat runs
//	                            with the same n/seed decode instead of
//	                            simulating. Don't combine with -stream/-shards
//	                            runs whose purpose is proving mode equivalence.
//
// Exit status: 0 clean, 1 drift, 2 harness error (missing golden, bad
// flags, simulation failure).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"cache8t/internal/regress"
	"cache8t/internal/report"
	"cache8t/internal/rescache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("regress: ")

	def := regress.DefaultOptions()
	golden := flag.String("golden", def.GoldenDir, "golden baseline directory")
	n := flag.Int("n", def.N, "accesses per benchmark (goldens are pinned at this N)")
	seed := flag.Uint64("seed", def.Seed, "workload master seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU)")
	update := flag.Bool("update", false, "regenerate goldens instead of diffing")
	full := flag.Bool("full", false, "render passing metrics in diff tables too")
	stream := flag.Bool("stream", false, "rebuild artifacts from streamed traces (constant memory; same numbers)")
	shards := flag.Int("shards", 0, "set-shard parallel simulation for set-local controllers (same numbers; cross-set controllers run serially)")
	bench := flag.Bool("bench", false, "measure serial-vs-parallel engine throughput and append it to -bench-out")
	benchOut := flag.String("bench-out", "BENCH_regress.json", "throughput trajectory file for -bench")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache CAS for check artifacts (default: no caching)")
	showVersion := flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(report.Version("regress"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cache *rescache.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = rescache.Open(rescache.Config{Dir: *cacheDir}); err != nil {
			log.Print(err)
			os.Exit(2)
		}
		defer cache.Close()
	}

	opts := regress.Options{
		GoldenDir: *golden,
		N:         *n,
		Seed:      *seed,
		Workers:   *workers,
		Update:    *update,
		Full:      *full,
		Stream:    *stream,
		Shards:    *shards,
		Context:   ctx,
		Out:       os.Stdout,
		Cache:     cache,
	}

	if *bench {
		entry, err := regress.Bench(opts)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		if err := regress.AppendBench(*benchOut, entry); err != nil {
			log.Print(err)
			os.Exit(2)
		}
		fmt.Printf("regress: bench appended to %s: serial %.0f items/s, parallel %.0f items/s (%d workers, %.2fx)\n",
			*benchOut, entry.SerialItemsPS, entry.ParallelItemsPS, entry.ParallelWorkers, entry.Speedup)
		return
	}

	sum, err := regress.Run(opts, flag.Args()...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	switch {
	case *update:
		fmt.Printf("regress: %d goldens regenerated in %s — review and commit them deliberately\n",
			len(sum.Updated), *golden)
	case sum.OK():
		fmt.Printf("regress: PASS — %d checks against %s\n", len(sum.Passed), *golden)
	default:
		fmt.Printf("regress: FAIL — drift in %v (%d/%d checks clean)\n",
			sum.Failed, len(sum.Passed), len(sum.Passed)+len(sum.Failed))
		os.Exit(1)
	}
}
