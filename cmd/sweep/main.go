// Command sweep explores the design space around the paper's sensitivity
// analysis (§5.3): access-frequency reduction across cache sizes, block
// sizes, associativities, and Set-Buffer depths, for one benchmark or the
// mean over all of them. Every (grid cell, benchmark) pair is an independent
// simulation, so the whole sweep fans out across the execution engine.
//
// Usage:
//
//	sweep                          mean over all benchmarks, default grids
//	sweep -bench bwaves            single benchmark
//	sweep -n 200000 -controller wg only the WG reduction
//	sweep -workers 8 -progress     8-way parallel with live progress
//	sweep -timeout 30s -stats      per-job timeout, engine snapshot at exit
//	sweep -stream                  regenerate traces per job (constant memory,
//	                               identical tables)
//	sweep -shards 4                set-shard the RMW baseline inside each job
//	                               (identical tables; WG/WGRB keep cross-set
//	                               state and run serially)
//	sweep -cache-dir DIR           memoize each (grid cell, benchmark) pair in
//	                               a persistent CAS (shareable with sramd and
//	                               regress); repeat sweeps skip finished cells
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/engine"
	"cache8t/internal/report"
	"cache8t/internal/rescache"
	"cache8t/internal/stats"
	"cache8t/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	bench := flag.String("bench", "", "single benchmark (default: mean over all 25)")
	n := flag.Int("n", 200_000, "accesses per benchmark")
	seed := flag.Uint64("seed", 1, "workload seed")
	controller := flag.String("controller", "wgrb", "technique to sweep: wg|wgrb")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-simulation timeout (0 = none)")
	progress := flag.Bool("progress", false, "print live job progress to stderr")
	snap := flag.Bool("stats", false, "print the engine snapshot (JSON) to stderr at exit")
	streamMode := flag.Bool("stream", false, "stream each job's trace instead of materializing (constant memory; same tables)")
	shards := flag.Int("shards", 0, "set-shard each job's set-local runs across this many goroutines (same tables)")
	reportPath := flag.String("report", "", "write the sweep artifact (canonical JSON) to this path")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache CAS for (cell, benchmark) reductions (default: no caching)")
	showVersion := flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(report.Version("sweep"))
		return
	}

	kind, err := core.ParseKind(*controller)
	if err != nil {
		log.Fatal(err)
	}
	if kind != core.WG && kind != core.WGRB {
		log.Fatalf("sweep compares %v against RMW; pick wg or wgrb", kind)
	}

	// Ctrl-C cancels in-flight simulations; partial grids are never printed
	// because each table renders only after its cells all complete.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var rc *rescache.Cache
	if *cacheDir != "" {
		if rc, err = rescache.Open(rescache.Config{Dir: *cacheDir}); err != nil {
			log.Fatal(err)
		}
		defer rc.Close()
	}

	profiles, err := workload.Resolve(*bench)
	if err != nil {
		log.Fatal(err)
	}
	// One Source per benchmark, shared across every grid point. Materialized
	// mode caches the slice on first use (sync.Once, so concurrent jobs are
	// fine); -stream regenerates the deterministic trace inside each job
	// instead, so memory stays flat no matter how large -n gets.
	srcs := workload.Sources(profiles, *seed, *n, *streamMode)

	ecfg := engine.Config{Workers: *workers, JobTimeout: *timeout}
	if *progress {
		ecfg.OnProgress = func(p engine.Progress) {
			fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s (%v)\n", p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
		}
	}
	eng := engine.New[float64](ecfg)

	// cell is one grid point; its reduction is the mean over benchmarks.
	type cell struct {
		cfg  cache.Config
		opts core.Options
	}
	// meanReductions evaluates cells on the engine, one job per
	// (cell, benchmark) pair, and averages per cell. Jobs land by
	// submission index, so the tables are identical for any -workers.
	meanReductions := func(cells []cell) []float64 {
		jobs := make([]engine.Job[float64], 0, len(cells)*len(srcs))
		for ci, c := range cells {
			c := c
			for si, src := range srcs {
				src := src
				prof := profiles[si]
				jobs = append(jobs, engine.Job[float64]{
					Label:  fmt.Sprintf("cell%d/%s", ci, prof.Name),
					Weight: 2 * int64(*n),
					Fn: func(jctx context.Context) (float64, error) {
						compute := func() (float64, error) {
							res, err := runPair(jctx, []core.Kind{core.RMW, kind}, c.cfg, c.opts, src, *shards)
							if err != nil {
								return 0, err
							}
							return stats.Reduction(res[1].ArrayAccesses(), res[0].ArrayAccesses()), nil
						}
						if rc == nil {
							return compute()
						}
						return cachedReduction(jctx, rc, reductionKey(kind, prof.Name, *n, *seed, c.cfg, c.opts), compute)
					},
				})
			}
		}
		outs, err := eng.Run(ctx, jobs)
		if err != nil {
			log.Fatal(err)
		}
		vals, err := engine.Values(outs)
		if err != nil {
			log.Fatal(err)
		}
		means := make([]float64, len(cells))
		for ci := range cells {
			var sum float64
			for si := range srcs {
				sum += vals[ci*len(srcs)+si]
			}
			means[ci] = sum / float64(len(srcs))
		}
		return means
	}

	label := "mean over 25 benchmarks"
	if *bench != "" {
		label = *bench
	}
	fmt.Printf("%s reduction vs RMW — %s, %d accesses/benchmark\n\n", kind, label, *n)

	start := time.Now()
	art := report.New("sweep", *seed)
	art.SetConfig("controller", kind)
	art.SetConfig("bench", label)
	art.SetConfig("n", *n)

	// Grid 1: capacity x block size (fixed 4-way, LRU, depth 1).
	sizesKB := []int{16, 32, 64, 128, 256}
	blocks := []int{16, 32, 64, 128}
	var cells []cell
	for _, kb := range sizesKB {
		for _, b := range blocks {
			cells = append(cells, cell{cfg: cache.Config{SizeBytes: kb * 1024, Ways: 4, BlockBytes: b, Policy: cache.LRU}})
		}
	}
	means := meanReductions(cells)
	t := stats.NewTable("capacity x block size (4-way, LRU)", gridCols("size \\ block", blocks)...)
	for i, kb := range sizesKB {
		row := []any{fmt.Sprintf("%dKB", kb)}
		for j, b := range blocks {
			row = append(row, stats.Pct(means[i*len(blocks)+j]))
			art.SetMetric(fmt.Sprintf("cap_block.%dKB.%dB", kb, b), means[i*len(blocks)+j])
		}
		t.AddRowf(row...)
	}
	render(t)

	// Grid 2: associativity (64KB/32B). Associativity changes the set row
	// width, so the Set-Buffer covers more blocks at higher ways.
	ways := []int{1, 2, 4, 8, 16}
	cells = cells[:0]
	for _, w := range ways {
		cells = append(cells, cell{cfg: cache.Config{SizeBytes: 64 * 1024, Ways: w, BlockBytes: 32, Policy: cache.LRU}})
	}
	means = meanReductions(cells)
	t = stats.NewTable("associativity (64KB, 32B blocks)", "ways", "reduction")
	for i, w := range ways {
		t.AddRowf(fmt.Sprintf("%d", w), stats.Pct(means[i]))
		art.SetMetric(fmt.Sprintf("assoc.%d", w), means[i])
	}
	render(t)

	// Grid 3: Set-Buffer depth (baseline shape).
	depths := []int{1, 2, 4, 8, 16}
	cells = cells[:0]
	for _, d := range depths {
		cells = append(cells, cell{cfg: cache.DefaultConfig(), opts: core.Options{BufferDepth: d}})
	}
	means = meanReductions(cells)
	t = stats.NewTable("Set-Buffer depth (64KB/4w/32B)", "entries", "reduction")
	for i, d := range depths {
		t.AddRowf(fmt.Sprintf("%d", d), stats.Pct(means[i]))
		art.SetMetric(fmt.Sprintf("depth.%d", d), means[i])
	}
	render(t)

	// Grid 4: replacement policy (baseline shape) — reductions are about
	// write locality, so policy should barely matter; surprises here would
	// flag a modeling bug.
	policies := []cache.PolicyKind{cache.LRU, cache.FIFO, cache.Random, cache.TreePLRU}
	cells = cells[:0]
	for _, pol := range policies {
		cfg := cache.DefaultConfig()
		cfg.Policy = pol
		cells = append(cells, cell{cfg: cfg})
	}
	means = meanReductions(cells)
	t = stats.NewTable("replacement policy (64KB/4w/32B)", "policy", "reduction")
	for i, pol := range policies {
		t.AddRowf(pol.String(), stats.Pct(means[i]))
		art.SetMetric("policy."+pol.String(), means[i])
	}
	render(t)

	if *snap {
		js, err := eng.Snapshot().JSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s\n", js)
	}
	if rc != nil {
		cs := rc.Snapshot()
		fmt.Fprintf(os.Stderr, "sweep: result cache: %d hits, %d misses, %d deduped (%d blobs on disk)\n",
			cs.Hits(), cs.Misses, cs.Dedups, cs.DiskEntries)
	}

	if *reportPath != "" {
		esnap := eng.Snapshot()
		art.Engine = &esnap
		art.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		if err := report.WriteFile(*reportPath, art); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
}

// reductionKey derives the cache key for one (grid cell, benchmark)
// reduction: every knob that shapes the number, and only those — stream
// mode, shards, and workers provably do not change the tables, exactly as
// the server's config hash excludes them.
func reductionKey(kind core.Kind, bench string, n int, seed uint64, cfg cache.Config, opts core.Options) string {
	key, err := report.Hash(map[string]string{
		"kind":                    "sweep-reduction",
		"controller":              kind.String(),
		"bench":                   bench,
		"n":                       fmt.Sprint(n),
		"seed":                    fmt.Sprint(seed),
		"cache_size_bytes":        fmt.Sprint(cfg.SizeBytes),
		"cache_ways":              fmt.Sprint(cfg.Ways),
		"cache_block_bytes":       fmt.Sprint(cfg.BlockBytes),
		"cache_policy":            cfg.Policy.String(),
		"buffer_depth":            fmt.Sprint(opts.BufferDepth),
		"silent_elision_disabled": fmt.Sprint(opts.DisableSilentElision),
		"count_fill_traffic":      fmt.Sprint(opts.CountFillTraffic),
	})
	if err != nil {
		log.Fatal(err) // canonical-encoding a string map cannot fail
	}
	return key
}

// cachedReduction memoizes one reduction value through the CAS: the blob
// is the canonical encoding of {"reduction": v}, so cached sweeps decode
// the exact float a fresh simulation would produce.
func cachedReduction(ctx context.Context, rc *rescache.Cache, key string, compute func() (float64, error)) (float64, error) {
	blob, _, err := rc.Do(ctx, key, func() ([]byte, error) {
		v, err := compute()
		if err != nil {
			return nil, err
		}
		return report.Canonical(map[string]float64{"reduction": v})
	})
	if err != nil {
		return 0, err
	}
	var m map[string]float64
	if err := json.Unmarshal(blob, &m); err != nil {
		return 0, fmt.Errorf("sweep: corrupt cached reduction: %w", err)
	}
	return m["reduction"], nil
}

// runPair drives both kinds of a reduction comparison over src. Without
// sharding they share one decode of the trace (broadcast); with -shards each
// kind runs set-sharded over its own fresh open — RMW actually shards, the
// WG family falls back to serial inside RunShardedContext.
func runPair(ctx context.Context, kinds []core.Kind, cfg cache.Config, opts core.Options, src *workload.Source, shards int) ([]core.Result, error) {
	if shards <= 1 {
		return core.RunEachStream(ctx, kinds, cfg, opts, src.Stream, 0, 0)
	}
	out := make([]core.Result, len(kinds))
	for i, k := range kinds {
		s, err := src.Stream()
		if err != nil {
			return nil, err
		}
		out[i], err = core.RunShardedContext(ctx, k, cfg, opts, s, 0, 0, shards)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func gridCols(first string, blocks []int) []string {
	cols := []string{first}
	for _, b := range blocks {
		cols = append(cols, fmt.Sprintf("%dB", b))
	}
	return cols
}

func render(t *stats.Table) {
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
