// Command sweep explores the design space around the paper's sensitivity
// analysis (§5.3): access-frequency reduction across cache sizes, block
// sizes, associativities, and Set-Buffer depths, for one benchmark or the
// mean over all of them.
//
// Usage:
//
//	sweep                          mean over all benchmarks, default grids
//	sweep -bench bwaves            single benchmark
//	sweep -n 200000 -controller wg only the WG reduction
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/stats"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	bench := flag.String("bench", "", "single benchmark (default: mean over all 25)")
	n := flag.Int("n", 200_000, "accesses per benchmark")
	seed := flag.Uint64("seed", 1, "workload seed")
	controller := flag.String("controller", "wgrb", "technique to sweep: wg|wgrb")
	flag.Parse()

	kind, err := core.ParseKind(*controller)
	if err != nil {
		log.Fatal(err)
	}
	if kind != core.WG && kind != core.WGRB {
		log.Fatalf("sweep compares %v against RMW; pick wg or wgrb", kind)
	}

	profiles := workload.Profiles()
	if *bench != "" {
		p, err := workload.ProfileByName(*bench)
		if err != nil {
			log.Fatal(err)
		}
		profiles = []workload.Profile{p}
	}

	// Materialize each stream once; every grid point replays the same
	// accesses.
	streams := make([][]trace.Access, len(profiles))
	for i, p := range profiles {
		accs, err := workload.Take(p, *seed, *n)
		if err != nil {
			log.Fatal(err)
		}
		streams[i] = accs
	}

	meanReduction := func(cfg cache.Config, opts core.Options) float64 {
		var sum float64
		for _, accs := range streams {
			res, err := core.RunAll([]core.Kind{core.RMW, kind}, cfg, opts, accs)
			if err != nil {
				log.Fatal(err)
			}
			sum += stats.Reduction(res[1].ArrayAccesses(), res[0].ArrayAccesses())
		}
		return sum / float64(len(streams))
	}

	label := "mean over 25 benchmarks"
	if *bench != "" {
		label = *bench
	}
	fmt.Printf("%s reduction vs RMW — %s, %d accesses/benchmark\n\n", kind, label, *n)

	// Grid 1: capacity x block size (fixed 4-way, LRU, depth 1).
	sizesKB := []int{16, 32, 64, 128, 256}
	blocks := []int{16, 32, 64, 128}
	t := stats.NewTable("capacity x block size (4-way, LRU)", gridCols("size \\ block", blocks)...)
	for _, kb := range sizesKB {
		row := []any{fmt.Sprintf("%dKB", kb)}
		for _, b := range blocks {
			cfg := cache.Config{SizeBytes: kb * 1024, Ways: 4, BlockBytes: b, Policy: cache.LRU}
			row = append(row, stats.Pct(meanReduction(cfg, core.Options{})))
		}
		t.AddRowf(row...)
	}
	render(t)

	// Grid 2: associativity (64KB/32B). Associativity changes the set row
	// width, so the Set-Buffer covers more blocks at higher ways.
	ways := []int{1, 2, 4, 8, 16}
	t = stats.NewTable("associativity (64KB, 32B blocks)", "ways", "reduction")
	for _, w := range ways {
		cfg := cache.Config{SizeBytes: 64 * 1024, Ways: w, BlockBytes: 32, Policy: cache.LRU}
		t.AddRowf(fmt.Sprintf("%d", w), stats.Pct(meanReduction(cfg, core.Options{})))
	}
	render(t)

	// Grid 3: Set-Buffer depth (baseline shape).
	depths := []int{1, 2, 4, 8, 16}
	t = stats.NewTable("Set-Buffer depth (64KB/4w/32B)", "entries", "reduction")
	for _, d := range depths {
		cfg := cache.DefaultConfig()
		t.AddRowf(fmt.Sprintf("%d", d), stats.Pct(meanReduction(cfg, core.Options{BufferDepth: d})))
	}
	render(t)

	// Grid 4: replacement policy (baseline shape) — reductions are about
	// write locality, so policy should barely matter; surprises here would
	// flag a modeling bug.
	t = stats.NewTable("replacement policy (64KB/4w/32B)", "policy", "reduction")
	for _, pol := range []cache.PolicyKind{cache.LRU, cache.FIFO, cache.Random, cache.TreePLRU} {
		cfg := cache.DefaultConfig()
		cfg.Policy = pol
		t.AddRowf(pol.String(), stats.Pct(meanReduction(cfg, core.Options{})))
	}
	render(t)
}

func gridCols(first string, blocks []int) []string {
	cols := []string{first}
	for _, b := range blocks {
		cols = append(cols, fmt.Sprintf("%dB", b))
	}
	return cols
}

func render(t *stats.Table) {
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
