// Command calibrate prints the measured stream statistics and access
// reductions for every benchmark profile, side by side — the tool used to
// tune internal/workload's profile table against the paper's anchors. Each
// benchmark is an independent engine job, so the suite fans out across
// -workers while the rows still print in profile order.
//
// Usage:
//
//	calibrate [-n accesses] [-sens] [-workers N] [-timeout D]
//
// -sens additionally sweeps the Figure 10/11 cache shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/engine"
	"cache8t/internal/report"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

// row is one benchmark's calibration line: the stream analysis plus the two
// measured reductions.
type row struct {
	an           core.StreamAnalysis
	wgRed, rbRed float64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	n := flag.Int("n", 400000, "accesses per benchmark")
	sens := flag.Bool("sens", false, "also sweep Figure 10/11 cache shapes")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-benchmark timeout (0 = none)")
	reportPath := flag.String("report", "", "write the calibration artifact (canonical JSON) to this path")
	showVersion := flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(report.Version("calibrate"))
		return
	}
	start := time.Now()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ecfg := engine.Config{Workers: *workers, JobTimeout: *timeout}

	cfg := cache.DefaultConfig()
	g := cache.MustGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes)
	profiles := workload.Profiles()

	jobs := make([]engine.Job[row], len(profiles))
	for i, p := range profiles {
		p := p
		jobs[i] = engine.Job[row]{
			Label:  p.Name,
			Weight: int64(*n),
			Fn: func(jctx context.Context) (row, error) {
				accs, err := workload.Take(p, 1, *n)
				if err != nil {
					return row{}, err
				}
				an := core.Analyze(trace.FromSlice(accs), g, 0)
				res, err := core.RunAllContext(jctx, []core.Kind{core.RMW, core.WG, core.WGRB}, cfg, core.Options{}, accs, 1)
				if err != nil {
					return row{}, err
				}
				rmw, wg, rb := res[0].ArrayAccesses(), res[1].ArrayAccesses(), res[2].ArrayAccesses()
				return row{
					an:    an,
					wgRed: 1 - float64(wg)/float64(rmw),
					rbRed: 1 - float64(rb)/float64(rmw),
				}, nil
			},
		}
	}
	rows, err := engine.Map(ctx, ecfg, jobs)
	if err != nil {
		log.Fatal(err)
	}

	var sumR, sumW, sumSS, sumWW, sumRR, sumSil, sumWG, sumRB float64
	fmt.Printf("%-11s %6s %6s | %6s %6s %6s %6s %6s | %6s | %6s %6s\n",
		"bench", "rd/ins", "wr/ins", "same", "RR", "RW", "WR", "WW", "silent", "WG", "WG+RB")
	for i, p := range profiles {
		an, wgRed, rbRed := rows[i].an, rows[i].wgRed, rows[i].rbRed
		fmt.Printf("%-11s %6.3f %6.3f | %6.3f %6.3f %6.3f %6.3f %6.3f | %6.3f | %6.3f %6.3f\n",
			p.Name, an.Stats.ReadFrac(), an.Stats.WriteFrac(), an.SameSetFrac(),
			an.RR(), an.RW(), an.WR(), an.WW(), an.SilentFrac(), wgRed, rbRed)
		sumR += an.Stats.ReadFrac()
		sumW += an.Stats.WriteFrac()
		sumSS += an.SameSetFrac()
		sumWW += an.WW()
		sumRR += an.RR()
		sumSil += an.SilentFrac()
		sumWG += wgRed
		sumRB += rbRed
	}
	k := float64(len(profiles))
	fmt.Printf("%-11s %6.3f %6.3f | %6.3f %6.3f %19s %6.3f | %6.3f | %6.3f %6.3f\n",
		"MEAN", sumR/k, sumW/k, sumSS/k, sumRR/k, "", sumWW/k, sumSil/k, sumWG/k, sumRB/k)

	if *sens {
		if err := sensitivity(ctx, ecfg, *n); err != nil {
			log.Fatal(err)
		}
	}

	if *reportPath != "" {
		art := report.New("calibrate", 1)
		art.SetConfig("n", *n)
		art.SetConfig("cache_size_bytes", cfg.SizeBytes)
		art.SetConfig("cache_ways", cfg.Ways)
		art.SetConfig("cache_block_bytes", cfg.BlockBytes)
		for i, p := range profiles {
			an := rows[i].an
			art.SetMetric(p.Name+".read_frac", an.Stats.ReadFrac())
			art.SetMetric(p.Name+".write_frac", an.Stats.WriteFrac())
			art.SetMetric(p.Name+".same_set_frac", an.SameSetFrac())
			art.SetMetric(p.Name+".silent_frac", an.SilentFrac())
			art.SetMetric(p.Name+".wg_reduction", rows[i].wgRed)
			art.SetMetric(p.Name+".wgrb_reduction", rows[i].rbRed)
		}
		art.SetMetric("mean.read_frac", sumR/k)
		art.SetMetric("mean.write_frac", sumW/k)
		art.SetMetric("mean.same_set_frac", sumSS/k)
		art.SetMetric("mean.silent_frac", sumSil/k)
		art.SetMetric("mean.wg_reduction", sumWG/k)
		art.SetMetric("mean.wgrb_reduction", sumRB/k)
		art.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		if err := report.WriteFile(*reportPath, art); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
}

// sensitivity sweeps the Figure 10/11 cache shapes and prints mean
// reductions for each, fanning (shape, benchmark) jobs across the engine.
func sensitivity(ctx context.Context, ecfg engine.Config, n int) error {
	shapes := []struct {
		name string
		cfg  cache.Config
	}{
		{"base 64K/4w/32B", cache.Config{SizeBytes: 64 * 1024, Ways: 4, BlockBytes: 32, Policy: cache.LRU}},
		{"fig10 32K/4w/64B", cache.Config{SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 64, Policy: cache.LRU}},
		{"fig11 32K/4w/32B", cache.Config{SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 32, Policy: cache.LRU}},
		{"fig11 128K/4w/32B", cache.Config{SizeBytes: 128 * 1024, Ways: 4, BlockBytes: 32, Policy: cache.LRU}},
	}
	type red struct{ wg, rb float64 }
	profiles := workload.Profiles()
	jobs := make([]engine.Job[red], 0, len(shapes)*len(profiles))
	for _, s := range shapes {
		s := s
		for _, p := range profiles {
			p := p
			jobs = append(jobs, engine.Job[red]{
				Label:  s.name + "/" + p.Name,
				Weight: int64(n),
				Fn: func(jctx context.Context) (red, error) {
					accs, err := workload.Take(p, 1, n)
					if err != nil {
						return red{}, err
					}
					res, err := core.RunAllContext(jctx, []core.Kind{core.RMW, core.WG, core.WGRB}, s.cfg, core.Options{}, accs, 1)
					if err != nil {
						return red{}, err
					}
					rmw, wg, rb := res[0].ArrayAccesses(), res[1].ArrayAccesses(), res[2].ArrayAccesses()
					return red{1 - float64(wg)/float64(rmw), 1 - float64(rb)/float64(rmw)}, nil
				},
			})
		}
	}
	reds, err := engine.Map(ctx, ecfg, jobs)
	if err != nil {
		return err
	}
	k := float64(len(profiles))
	for si, s := range shapes {
		var sumWG, sumRB float64
		for pi := range profiles {
			r := reds[si*len(profiles)+pi]
			sumWG += r.wg
			sumRB += r.rb
		}
		fmt.Printf("%-18s WG=%.3f WG+RB=%.3f\n", s.name, sumWG/k, sumRB/k)
	}
	return nil
}
