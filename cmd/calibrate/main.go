// Command calibrate prints the measured stream statistics and access
// reductions for every benchmark profile, side by side — the tool used to
// tune internal/workload's profile table against the paper's anchors.
//
// Usage:
//
//	calibrate [-n accesses] [-sens]
//
// -sens additionally sweeps the Figure 10/11 cache shapes.
package main

import (
	"flag"
	"fmt"
	"log"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	n := flag.Int("n", 400000, "accesses per benchmark")
	sens := flag.Bool("sens", false, "also sweep Figure 10/11 cache shapes")
	flag.Parse()

	cfg := cache.DefaultConfig()
	g := cache.MustGeometry(cfg.SizeBytes, cfg.Ways, cfg.BlockBytes)
	var sumR, sumW, sumSS, sumWW, sumRR, sumSil, sumWG, sumRB float64
	fmt.Printf("%-11s %6s %6s | %6s %6s %6s %6s %6s | %6s | %6s %6s\n",
		"bench", "rd/ins", "wr/ins", "same", "RR", "RW", "WR", "WW", "silent", "WG", "WG+RB")
	for _, p := range workload.Profiles() {
		accs, err := workload.Take(p, 1, *n)
		if err != nil {
			log.Fatal(err)
		}
		an := core.Analyze(trace.FromSlice(accs), g, 0)
		res, err := core.RunAll([]core.Kind{core.RMW, core.WG, core.WGRB}, cfg, core.Options{}, accs)
		if err != nil {
			log.Fatal(err)
		}
		rmw, wg, rb := res[0].ArrayAccesses(), res[1].ArrayAccesses(), res[2].ArrayAccesses()
		wgRed := 1 - float64(wg)/float64(rmw)
		rbRed := 1 - float64(rb)/float64(rmw)
		fmt.Printf("%-11s %6.3f %6.3f | %6.3f %6.3f %6.3f %6.3f %6.3f | %6.3f | %6.3f %6.3f\n",
			p.Name, an.Stats.ReadFrac(), an.Stats.WriteFrac(), an.SameSetFrac(),
			an.RR(), an.RW(), an.WR(), an.WW(), an.SilentFrac(), wgRed, rbRed)
		sumR += an.Stats.ReadFrac()
		sumW += an.Stats.WriteFrac()
		sumSS += an.SameSetFrac()
		sumWW += an.WW()
		sumRR += an.RR()
		sumSil += an.SilentFrac()
		sumWG += wgRed
		sumRB += rbRed
	}
	k := float64(len(workload.Profiles()))
	fmt.Printf("%-11s %6.3f %6.3f | %6.3f %6.3f %19s %6.3f | %6.3f | %6.3f %6.3f\n",
		"MEAN", sumR/k, sumW/k, sumSS/k, sumRR/k, "", sumWW/k, sumSil/k, sumWG/k, sumRB/k)

	if *sens {
		if err := sensitivity(*n); err != nil {
			log.Fatal(err)
		}
	}
}

// sensitivity sweeps the Figure 10/11 cache shapes and prints mean
// reductions for each.
func sensitivity(n int) error {
	shapes := []struct {
		name string
		cfg  cache.Config
	}{
		{"base 64K/4w/32B", cache.Config{SizeBytes: 64 * 1024, Ways: 4, BlockBytes: 32, Policy: cache.LRU}},
		{"fig10 32K/4w/64B", cache.Config{SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 64, Policy: cache.LRU}},
		{"fig11 32K/4w/32B", cache.Config{SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 32, Policy: cache.LRU}},
		{"fig11 128K/4w/32B", cache.Config{SizeBytes: 128 * 1024, Ways: 4, BlockBytes: 32, Policy: cache.LRU}},
	}
	for _, s := range shapes {
		var sumWG, sumRB float64
		for _, p := range workload.Profiles() {
			accs, err := workload.Take(p, 1, n)
			if err != nil {
				return err
			}
			res, err := core.RunAll([]core.Kind{core.RMW, core.WG, core.WGRB}, s.cfg, core.Options{}, accs)
			if err != nil {
				return err
			}
			rmw, wg, rb := res[0].ArrayAccesses(), res[1].ArrayAccesses(), res[2].ArrayAccesses()
			sumWG += 1 - float64(wg)/float64(rmw)
			sumRB += 1 - float64(rb)/float64(rmw)
		}
		k := float64(len(workload.Profiles()))
		fmt.Printf("%-18s WG=%.3f WG+RB=%.3f\n", s.name, sumWG/k, sumRB/k)
	}
	return nil
}
