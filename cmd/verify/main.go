// Command verify is the correctness harness: it hammers every controller
// with randomized request streams across randomized cache shapes and checks
// the architectural contract against the RMW baseline — same value returned
// for every access, same final memory image (DESIGN.md §5). Rounds are
// independent engine jobs: each derives its own RNG from a per-round seed
// drawn serially from the master seed, so the set of shapes exercised is
// identical for any -workers value, and the first divergence cancels the
// remaining rounds (fail-fast).
//
// Usage:
//
//	verify                 default: 64 rounds
//	verify -rounds 1000    long soak
//	verify -seed 42        reproduce a specific round sequence
//	verify -workers 8      parallel rounds
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/engine"
	"cache8t/internal/report"
	"cache8t/internal/rng"
	"cache8t/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")

	rounds := flag.Int("rounds", 64, "randomized rounds to run")
	seed := flag.Uint64("seed", 1, "master seed")
	accesses := flag.Int("n", 5000, "accesses per round")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel rounds (1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-round timeout (0 = none)")
	reportPath := flag.String("report", "", "write the run artifact (canonical JSON) to this path")
	showVersion := flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(report.Version("verify"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	kinds := []core.Kind{
		core.Conventional, core.LocalRMW, core.WordGranularity,
		core.Coalesce, core.WG, core.WGRB,
	}

	// Round seeds are drawn serially up front so the tested shapes depend
	// only on -seed and -rounds, never on scheduling.
	master := rng.New(*seed)
	seeds := make([]uint64, *rounds)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	eng := engine.New[int](engine.Config{
		Workers:    *workers,
		JobTimeout: *timeout,
		FailFast:   true,
		OnProgress: func(p engine.Progress) {
			if p.Err == nil && p.Done%16 == 0 {
				fmt.Printf("%d/%d rounds done (%v)\n", p.Done, p.Total, p.Elapsed.Round(time.Millisecond))
			}
		},
	})

	jobs := make([]engine.Job[int], *rounds)
	for round := range jobs {
		round := round
		jobs[round] = engine.Job[int]{
			Label:  fmt.Sprintf("round %d", round),
			Weight: int64(*accesses * len(kinds)),
			Fn: func(context.Context) (int, error) {
				r := rng.New(seeds[round])
				cfg, opts := randomShape(r)
				stream := randomStream(r, *accesses)
				checked := 0
				for _, k := range kinds {
					if err := core.VerifyEquivalence(core.RMW, k, cfg, opts, stream); err != nil {
						return checked, fmt.Errorf("cfg %+v, opts %+v: %w", cfg, opts, err)
					}
					checked++
				}
				return checked, nil
			},
		}
	}

	start := time.Now()
	outs, err := eng.Run(ctx, jobs)
	if err != nil {
		log.Fatal(err)
	}
	checked := 0
	for _, o := range outs {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		checked += o.Value
	}
	fmt.Printf("PASS: %d rounds, %d controller pairings, no divergence\n", *rounds, checked)
	fmt.Println(eng.Snapshot())

	if *reportPath != "" {
		art := report.New("verify", *seed)
		art.SetConfig("rounds", *rounds)
		art.SetConfig("accesses_per_round", *accesses)
		art.SetConfig("controller_kinds", len(kinds))
		art.SetMetric("rounds", float64(*rounds))
		art.SetMetric("pairings_checked", float64(checked))
		snap := eng.Snapshot()
		art.Engine = &snap
		art.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		if err := report.WriteFile(*reportPath, art); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
}

// randomShape draws one round's cache configuration and controller options.
func randomShape(r *rng.Xoshiro256) (cache.Config, core.Options) {
	sizes := []int{512, 1024, 4096, 65536}
	blocks := []int{16, 32, 64}
	waysChoices := []int{1, 2, 4}
	policies := []cache.PolicyKind{cache.LRU, cache.FIFO, cache.Random, cache.TreePLRU}
	depths := []int{1, 2, 4}
	cfg := cache.Config{
		SizeBytes:       sizes[r.Intn(len(sizes))],
		Ways:            waysChoices[r.Intn(len(waysChoices))],
		BlockBytes:      blocks[r.Intn(len(blocks))],
		Policy:          policies[r.Intn(len(policies))],
		Seed:            r.Uint64(),
		NoWriteAllocate: r.Bool(0.3),
	}
	if cfg.SizeBytes < cfg.Ways*cfg.BlockBytes {
		cfg.SizeBytes = cfg.Ways * cfg.BlockBytes * 4
	}
	opts := core.Options{
		BufferDepth:          depths[r.Intn(len(depths))],
		DisableSilentElision: r.Bool(0.3),
	}
	return cfg, opts
}

// randomStream builds a hostile stream: mixed sizes, deliberate block
// straddles, tight footprints that force evictions inside buffered sets,
// and frequent silent-write candidates.
func randomStream(r *rng.Xoshiro256, n int) []trace.Access {
	sizes := []uint8{1, 2, 4, 8}
	footprint := uint64(1) << (10 + r.Intn(5)) // 1K..16K
	out := make([]trace.Access, 0, n)
	for i := 0; i < n; i++ {
		size := sizes[r.Intn(len(sizes))]
		var addr uint64
		if r.Bool(0.05) {
			// Unaligned, possibly block-straddling.
			addr = uint64(r.Intn(int(footprint)))
		} else {
			addr = uint64(r.Intn(int(footprint/uint64(size)))) * uint64(size)
		}
		a := trace.Access{Addr: addr, Size: size, Gap: uint32(r.Intn(4))}
		if r.Bool(0.45) {
			a.Kind = trace.Write
			if r.Bool(0.5) {
				a.Data = 0
			} else {
				a.Data = r.Uint64()
			}
		}
		out = append(out, a)
	}
	return out
}
