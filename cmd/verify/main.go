// Command verify is the correctness harness: it hammers every controller
// with randomized request streams across randomized cache shapes and checks
// the architectural contract against the RMW baseline — same value returned
// for every access, same final memory image (DESIGN.md §5).
//
// Usage:
//
//	verify                 default: 64 rounds
//	verify -rounds 1000    long soak
//	verify -seed 42        reproduce a specific round sequence
package main

import (
	"flag"
	"fmt"
	"log"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/rng"
	"cache8t/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")

	rounds := flag.Int("rounds", 64, "randomized rounds to run")
	seed := flag.Uint64("seed", 1, "master seed")
	accesses := flag.Int("n", 5000, "accesses per round")
	flag.Parse()

	r := rng.New(*seed)
	kinds := []core.Kind{
		core.Conventional, core.LocalRMW, core.WordGranularity,
		core.Coalesce, core.WG, core.WGRB,
	}
	sizes := []int{512, 1024, 4096, 65536}
	blocks := []int{16, 32, 64}
	waysChoices := []int{1, 2, 4}
	policies := []cache.PolicyKind{cache.LRU, cache.FIFO, cache.Random, cache.TreePLRU}
	depths := []int{1, 2, 4}

	checked := 0
	for round := 0; round < *rounds; round++ {
		cfg := cache.Config{
			SizeBytes:       sizes[r.Intn(len(sizes))],
			Ways:            waysChoices[r.Intn(len(waysChoices))],
			BlockBytes:      blocks[r.Intn(len(blocks))],
			Policy:          policies[r.Intn(len(policies))],
			Seed:            r.Uint64(),
			NoWriteAllocate: r.Bool(0.3),
		}
		if cfg.SizeBytes < cfg.Ways*cfg.BlockBytes {
			cfg.SizeBytes = cfg.Ways * cfg.BlockBytes * 4
		}
		opts := core.Options{
			BufferDepth:          depths[r.Intn(len(depths))],
			DisableSilentElision: r.Bool(0.3),
		}
		stream := randomStream(r, *accesses)
		for _, k := range kinds {
			if err := core.VerifyEquivalence(core.RMW, k, cfg, opts, stream); err != nil {
				log.Fatalf("round %d (cfg %+v, opts %+v): %v", round, cfg, opts, err)
			}
			checked++
		}
		if (round+1)%16 == 0 {
			fmt.Printf("round %d/%d ok (%d pairings checked)\n", round+1, *rounds, checked)
		}
	}
	fmt.Printf("PASS: %d rounds, %d controller pairings, no divergence\n", *rounds, checked)
}

// randomStream builds a hostile stream: mixed sizes, deliberate block
// straddles, tight footprints that force evictions inside buffered sets,
// and frequent silent-write candidates.
func randomStream(r *rng.Xoshiro256, n int) []trace.Access {
	sizes := []uint8{1, 2, 4, 8}
	footprint := uint64(1) << (10 + r.Intn(5)) // 1K..16K
	out := make([]trace.Access, 0, n)
	for i := 0; i < n; i++ {
		size := sizes[r.Intn(len(sizes))]
		var addr uint64
		if r.Bool(0.05) {
			// Unaligned, possibly block-straddling.
			addr = uint64(r.Intn(int(footprint)))
		} else {
			addr = uint64(r.Intn(int(footprint/uint64(size)))) * uint64(size)
		}
		a := trace.Access{Addr: addr, Size: size, Gap: uint32(r.Intn(4))}
		if r.Bool(0.45) {
			a.Kind = trace.Write
			if r.Bool(0.5) {
				a.Data = 0
			} else {
				a.Data = r.Uint64()
			}
		}
		out = append(out, a)
	}
	return out
}
