// Command benchcore measures the controller hot path in both execution modes
// — materialized slice replay vs the batched streaming pipeline decoding a
// binary trace — verifies the two produce identical results, and appends the
// throughput pair to BENCH_core.json. The accumulated file is the
// streamed-vs-materialized performance trajectory across commits: a ratio
// drifting below 1.0 means the streaming path has picked up overhead the
// equivalence tests cannot see. With -shards it also times the set-sharded
// parallel driver over the same decode and appends that third trajectory.
//
// Usage:
//
//	benchcore                   1M accesses, append to BENCH_core.json
//	benchcore -n 100000         quicker run (CI smoke uses this)
//	benchcore -shards 4         also bench the set-sharded driver (RMW)
//	benchcore -scale 1,2,4,8    shard-scaling sweep instead (identity-checked)
//	benchcore -hier             two-level hierarchy driver instead (identity-checked)
//	benchcore -out /tmp/b.json  append elsewhere
//	benchcore -cpuprofile p.out profile the whole run
//
// Exit status: 0 appended, 1 harness or divergence error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"cache8t/internal/prof"
	"cache8t/internal/regress"
	"cache8t/internal/report"
)

// parseScale splits a comma-separated shard-count list ("1,2,4,8").
func parseScale(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q in -scale (want positive integers)", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-scale is empty")
	}
	return counts, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcore: ")

	def := regress.DefaultOptions()
	n := flag.Int("n", 1_000_000, "accesses to replay per mode")
	seed := flag.Uint64("seed", def.Seed, "workload seed")
	shards := flag.Int("shards", 0, "also bench the set-sharded driver with this many shards")
	scale := flag.String("scale", "", "comma-separated shard counts: run a scaling sweep instead (e.g. 1,2,4,8)")
	hierMode := flag.Bool("hier", false, "bench the two-level hierarchy driver instead (WG L1 over an RMW L2)")
	out := flag.String("out", "BENCH_core.json", "throughput trajectory file to append to")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	showVersion := flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(report.Version("benchcore"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()

	opts := regress.DefaultOptions()
	opts.N = *n
	opts.Seed = *seed
	opts.Shards = *shards
	opts.Context = ctx

	if *hierMode {
		entry, err := regress.HierBench(opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := regress.AppendHierBench(*out, entry); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchcore: appended hier entry to %s: materialized %.0f acc/s, streamed %.0f acc/s (ratio %.3f, %s/%s→%s, n=%d, l2_visible=%d, gomaxprocs=%d, num_cpu=%d)\n",
			*out, entry.MaterializedAccPS, entry.StreamedAccPS, entry.Ratio,
			entry.Workload, entry.L1Controller, entry.L2Controller, entry.N, entry.L2Visible,
			entry.GoMaxProcs, entry.NumCPU)
		if err := prof.WriteHeap(*memprofile); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *scale != "" {
		counts, err := parseScale(*scale)
		if err != nil {
			log.Fatal(err)
		}
		entry, err := regress.ShardScale(opts, counts)
		if err != nil {
			log.Fatal(err)
		}
		if err := regress.AppendShardScale(*out, entry); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchcore: appended shard-scale sweep to %s (%s/%s, n=%d, gomaxprocs=%d, num_cpu=%d)\n",
			*out, entry.Workload, entry.Controller, entry.N, entry.GoMaxProcs, entry.NumCPU)
		fmt.Printf("benchcore: streamed baseline %.0f acc/s\n", entry.StreamedAccPS)
		for _, p := range entry.Points {
			fmt.Printf("benchcore:   %d shard(s): %.0f acc/s (%.3fx over streamed)\n", p.Shards, p.AccPS, p.Ratio)
		}
		if err := prof.WriteHeap(*memprofile); err != nil {
			log.Fatal(err)
		}
		return
	}

	entry, err := regress.CoreBench(opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := regress.AppendCoreBench(*out, entry); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchcore: appended to %s: materialized %.0f acc/s, streamed %.0f acc/s (ratio %.3f, %s/%s, n=%d)\n",
		*out, entry.MaterializedAccPS, entry.StreamedAccPS, entry.Ratio, entry.Workload, entry.Controller, entry.N)
	if entry.Shards > 1 {
		fmt.Printf("benchcore: sharded (%d shards) %.0f acc/s (%.3fx over streamed)\n",
			entry.Shards, entry.ShardedAccPS, entry.ShardedRatio)
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		log.Fatal(err)
	}
}
