// Command figures regenerates the paper's tables and figures (plus the
// ablations) and prints each with the paper's reported values alongside the
// measured ones — the reproduction's main entry point.
//
// Usage:
//
//	figures                          run everything
//	figures -fig 9 -fig 10           run selected artifacts
//	figures -n 1000000 -csv out/     larger budget, CSV copies
//	figures -bars                    add ASCII bar charts for reduction figures
//	figures -workers 8 -timeout 5m   parallel benchmarks, whole-run deadline
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cache8t/internal/experiments"
	"cache8t/internal/report"
	"cache8t/internal/stats"
)

// figList accumulates repeated -fig flags.
type figList []string

func (f *figList) String() string { return strings.Join(*f, ",") }

func (f *figList) Set(v string) error {
	// Accept both "9" and "fig9".
	if _, err := strconv.Atoi(v); err == nil {
		v = "fig" + v
	}
	*f = append(*f, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var figs figList
	flag.Var(&figs, "fig", "artifact id to run (repeatable): 3,4,5,8,9,10,11, rmw, area, perf, ablation-*")
	n := flag.Int("n", 400_000, "accesses per benchmark")
	seed := flag.Uint64("seed", 1, "workload seed")
	csvDir := flag.String("csv", "", "directory to also write per-figure CSV files")
	md := flag.Bool("md", false, "render tables as GitHub-flavored markdown")
	bars := flag.Bool("bars", false, "render ASCII bar charts for the reduction figures")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial)")
	timeout := flag.Duration("timeout", 0, "whole-run deadline (0 = none)")
	reportPath := flag.String("report", "", "write the run artifact (canonical JSON) to this path")
	showVersion := flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(report.Version("figures"))
		return
	}
	start := time.Now()

	// Ctrl-C and -timeout both cancel through the experiments' engine jobs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Default()
	cfg.AccessesPerBench = *n
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Context = ctx

	selected := experiments.All()
	if len(figs) > 0 {
		selected = selected[:0]
		for _, id := range figs {
			e, err := experiments.ByID(id)
			if err != nil {
				log.Fatal(err)
			}
			selected = append(selected, e)
		}
	}

	art := report.New("figures", *seed)
	art.SetConfig("n", *n)
	art.SetConfig("experiments", len(selected))
	for _, e := range selected {
		expStart := time.Now()
		tab, err := e.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		art.SetMetric(e.ID+".wall_ms", float64(time.Since(expStart).Microseconds())/1e3)
		fmt.Printf("== %s ==\n", e.Title)
		render := tab.Render
		if *md {
			render = tab.Markdown
		}
		if err := render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *bars && strings.HasPrefix(e.ID, "fig") && len(tab.Columns) >= 3 && tab.Columns[1] == "WG" {
			renderBars(tab)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, tab); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *reportPath != "" {
		art.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		if err := report.WriteFile(*reportPath, art); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
}

// renderBars draws the WG+RB column of a reduction table as a bar chart,
// echoing the paper's bar-per-benchmark figures.
func renderBars(tab *stats.Table) {
	var labels []string
	var ratios []float64
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], "MEAN") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(r[2], "%"), 64)
		if err != nil {
			continue
		}
		labels = append(labels, r[0])
		ratios = append(ratios, v/100)
	}
	fmt.Print(stats.Bars("WG+RB reduction", labels, ratios, 50))
}

func writeCSV(dir, id string, tab *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	if err := tab.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
