// Command sramsim runs one (workload, controller, cache shape) simulation
// and prints the full ledger: demand traffic, array traffic, Set-Buffer
// activity, functional cache statistics, and the modeled timing/energy.
//
// Usage:
//
//	sramsim -workload bwaves -controller wgrb -n 1000000
//	sramsim -trace requests.c8tt -controller rmw
//	sramsim -trace huge.c8tt.gz -stream -batch 8192
//	sramsim -shards 4 -controller rmw -workload mcf
//	sramsim -report run.json -workload mcf
//	sramsim -cpuprofile cpu.out -memprofile mem.out -n 10000000
//	sramsim -list
//
// The -trace flag replays a trace file (binary C8TT, gzipped, or text — the
// framing is sniffed) instead of a synthetic workload; a decode error
// mid-stream aborts the run with a non-zero exit before any results print,
// so CI can trust the exit code. -stream runs the batched streaming pipeline
// — results are identical, memory stays constant no matter the trace size —
// and -batch tunes its batch length. -shards partitions the cache's sets
// across that many concurrent controller instances (implies -stream);
// results stay byte-identical, and controllers with cross-set state log the
// reason and run serially. -report writes the run's canonical artifact
// (internal/report) for the regression tooling. -cpuprofile/-memprofile
// write standard pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cache8t/internal/cache"
	"cache8t/internal/core"
	"cache8t/internal/energy"
	"cache8t/internal/prof"
	"cache8t/internal/report"
	"cache8t/internal/sram"
	"cache8t/internal/stats"
	"cache8t/internal/timing"
	"cache8t/internal/trace"
	"cache8t/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sramsim: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		workloadName = flag.String("workload", "bwaves", "bundled workload name (see -list)")
		traceFile    = flag.String("trace", "", "binary trace file to replay instead of a workload")
		controller   = flag.String("controller", "wgrb", "conventional|rmw|localrmw|word|coalesce|wg|wgrb")
		n            = flag.Int("n", 1_000_000, "accesses to simulate (workloads only; traces replay fully)")
		seed         = flag.Uint64("seed", 1, "workload seed")
		sizeKB       = flag.Int("size", 64, "cache size in KB")
		ways         = flag.Int("ways", 4, "associativity")
		block        = flag.Int("block", 32, "block size in bytes")
		policy       = flag.String("policy", "lru", "replacement policy: lru|fifo|random|plru")
		depth        = flag.Int("depth", 1, "Set-Buffer entries (wg/wgrb)")
		noSilent     = flag.Bool("no-silent-elision", false, "disable the Dirty-bit silent-write optimization")
		countFills   = flag.Bool("count-fills", false, "include miss-handling traffic in array-access totals")
		voltage      = flag.Float64("vdd", 1.0, "operating voltage for the energy report")
		freq         = flag.Float64("freq", 2000, "operating frequency in MHz")
		reportPath   = flag.String("report", "", "write the run artifact (canonical JSON) to this path")
		streamMode   = flag.Bool("stream", false, "run on the batched streaming pipeline (constant memory; same results)")
		batch        = flag.Int("batch", 0, "streaming batch size in accesses (0 = default, implies -stream when set)")
		shards       = flag.Int("shards", 0, "set-shard the simulation across this many goroutines (implies -stream; same results)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		list         = flag.Bool("list", false, "list bundled workloads and exit")
		showVersion  = flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(report.Version("sramsim"))
		return nil
	}
	if *list {
		fmt.Println(strings.Join(workload.Names(), "\n"))
		return nil
	}

	kind, err := core.ParseKind(*controller)
	if err != nil {
		return err
	}
	pol, err := cache.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	cfg := cache.Config{
		SizeBytes:  *sizeKB * 1024,
		Ways:       *ways,
		BlockBytes: *block,
		Policy:     pol,
		Seed:       *seed,
	}
	opts := core.Options{
		BufferDepth:          *depth,
		DisableSilentElision: *noSilent,
		CountFillTraffic:     *countFills,
	}

	if *batch != 0 || *shards > 1 {
		*streamMode = true
	}

	stopCPU, err := prof.StartCPU(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopCPU()

	var stream trace.Stream
	var errStream trace.ErrStream
	var sourceName string
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		// Sniffs gzip, binary C8TT, or text framing; the run never holds more
		// than one decoded batch of the file.
		errStream, err = trace.NewAnyReader(f)
		if err != nil {
			return err
		}
		stream = errStream
		sourceName = *traceFile
		*n = 0 // replay fully
	} else {
		gen, err := workload.Stream(*workloadName, *seed)
		if err != nil {
			return err
		}
		stream = gen
		sourceName = *workloadName
	}

	if *shards > 1 {
		// Refuse, up front, a shard request the driver would silently run
		// serially — asking for parallelism and getting none is a surprise
		// worth an error, not a log line. A clamp (fewer shards than asked,
		// but still parallel) only warns.
		plan := core.PlanShards(kind, cfg, *shards)
		if plan.Shards <= 1 && plan.Reason != "" {
			reason := strings.TrimSuffix(plan.Reason, "; running serially")
			return fmt.Errorf("-shards %d is not possible for this run: %s (drop -shards, or pick a set-local controller: conventional, word, rmw, localrmw)", *shards, reason)
		}
		if plan.Reason != "" {
			log.Printf("-shards %d: %s", *shards, plan.Reason)
		}
	}

	start := time.Now()
	var res core.Result
	if *streamMode {
		// The streaming entry point surfaces decode failures itself, with the
		// clean-access count attached. RunSharded degrades to the plain
		// streaming driver whenever the plan above fell back to serial.
		res, err = core.RunSharded(kind, cfg, opts, stream, *n, *batch, *shards)
		if err != nil {
			return err
		}
	} else {
		res, err = core.Run(kind, cfg, opts, stream, *n)
		if err != nil {
			return err
		}
		// A trace that stops decoding mid-stream ends the run exactly like a
		// clean EOF, so the decode error must be checked — and fail the
		// command — before any result is presented as trustworthy.
		if errStream != nil {
			if err := errStream.Err(); err != nil {
				return fmt.Errorf("trace decode (after %d accesses): %w", res.Requests.Accesses(), err)
			}
		}
	}
	wall := time.Since(start)

	if err := printResult(sourceName, cfg, res, *voltage, *freq); err != nil {
		return err
	}

	if *reportPath != "" {
		art := report.New("sramsim", *seed)
		art.SetConfig("source", sourceName)
		art.SetConfig("controller", kind)
		art.SetConfig("n", *n)
		art.SetConfig("cache_size_bytes", cfg.SizeBytes)
		art.SetConfig("cache_ways", cfg.Ways)
		art.SetConfig("cache_block_bytes", cfg.BlockBytes)
		art.SetConfig("cache_policy", cfg.Policy)
		art.SetConfig("buffer_depth", *depth)
		art.SetConfig("silent_elision_disabled", *noSilent)
		art.SetConfig("count_fill_traffic", *countFills)
		art.SetConfig("vdd", *voltage)
		art.SetConfig("freq_mhz", *freq)
		art.AddController(res)
		art.SetMetric("accesses_per_request", res.AccessesPerRequest())
		art.SetMetric("miss_rate", res.Cache.MissRate())
		tp := timing.DefaultParams()
		if trep, err := timing.Evaluate(res, tp); err == nil {
			art.SetMetric("cpi", trep.CPI())
			art.SetMetric("avg_read_latency_cycles", trep.AvgReadLatency)
		}
		if erep, err := energy.Evaluate(res, sram.OperatingPoint{VoltageV: *voltage, FreqMHz: *freq}, timing.DefaultParams()); err == nil {
			art.SetMetric("dynamic_j", erep.DynamicJ)
			art.SetMetric("leakage_j", erep.LeakageJ)
		}
		art.WallMS = float64(wall.Microseconds()) / 1e3
		if err := report.WriteFile(*reportPath, art); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *reportPath)
	}
	return prof.WriteHeap(*memprofile)
}

func printResult(source string, cfg cache.Config, res core.Result, vdd, freqMHz float64) error {
	g := res.Geometry
	fmt.Printf("source      %s\n", source)
	fmt.Printf("cache       %s, %v replacement\n", g, cfg.Policy)
	fmt.Printf("controller  %s\n\n", res.Controller)

	t := stats.NewTable("Demand traffic", "metric", "value")
	t.AddRowf("reads", res.Counters.DemandReads)
	t.AddRowf("writes", res.Counters.DemandWrites)
	t.AddRowf("instructions", res.Requests.Instructions)
	t.AddRowf("reads/instr", stats.Pct(res.Requests.ReadFrac()))
	t.AddRowf("writes/instr", stats.Pct(res.Requests.WriteFrac()))
	t.AddRowf("miss rate", stats.Pct(res.Cache.MissRate()))
	if err := render(t); err != nil {
		return err
	}

	t = stats.NewTable("Array traffic", "metric", "value")
	t.AddRowf("array reads", res.ArrayReads)
	t.AddRowf("array writes", res.ArrayWrites)
	t.AddRowf("total array accesses", res.ArrayAccesses())
	t.AddRowf("accesses/request", res.AccessesPerRequest())
	if err := render(t); err != nil {
		return err
	}

	c := res.Counters
	if c.BufferFills > 0 || c.TagProbes > 0 {
		t = stats.NewTable("Set-Buffer activity", "metric", "value")
		t.AddRowf("tag probes", c.TagProbes)
		t.AddRowf("tag hits", c.TagHits)
		t.AddRowf("grouped writes", c.GroupedWrites)
		t.AddRowf("silent writes", c.SilentWrites)
		t.AddRowf("buffer fills", c.BufferFills)
		t.AddRowf("buffer write-backs", c.BufferWritebacks)
		t.AddRowf("premature write-backs", c.PrematureWBs)
		t.AddRowf("write-backs elided (clean Dirty)", c.SilentElidedWBs)
		t.AddRowf("bypassed reads", c.BypassedReads)
		if err := render(t); err != nil {
			return err
		}
	}

	tp := timing.DefaultParams()
	trep, err := timing.Evaluate(res, tp)
	if err != nil {
		return err
	}
	erep, err := energy.Evaluate(res, sram.OperatingPoint{VoltageV: vdd, FreqMHz: freqMHz}, tp)
	if err != nil {
		return err
	}
	t = stats.NewTable(fmt.Sprintf("Modeled timing & energy (%.2fV/%.0fMHz)", vdd, freqMHz), "metric", "value")
	t.AddRowf("CPI", fmt.Sprintf("%.4f", trep.CPI()))
	t.AddRowf("avg read latency (cycles)", fmt.Sprintf("%.3f", trep.AvgReadLatency))
	t.AddRowf("read-port utilization", stats.Pct(trep.ReadPortUtilization))
	t.AddRowf("write-port utilization", stats.Pct(trep.WritePortUtilization))
	t.AddRowf("dynamic energy", fmt.Sprintf("%.3e J", erep.DynamicJ))
	t.AddRowf("leakage energy", fmt.Sprintf("%.3e J", erep.LeakageJ))
	t.AddRowf("energy/access", fmt.Sprintf("%.3f nJ", energy.PerAccessJ(erep, res.Requests.Accesses())*1e9))
	return render(t)
}

func render(t *stats.Table) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}
