// Command sramload drives a running sramd daemon: a load generator that
// fans N concurrent clients out over the job API and reports latency
// percentiles and aggregate simulation throughput, plus a -smoke mode used
// by `make serve-smoke` and CI to gate the service end to end.
//
// Usage:
//
//	sramload -addr http://127.0.0.1:8344 -clients 8 -jobs 32
//	sramload -sramd ./sramd-binary -clients 4 -jobs 16   # spawn a daemon
//	sramload -smoke -sramd ./sramd-binary                # CI service gate
//	sramload -smoke -sramd ./sramd-binary -update        # regenerate golden
//	sramload -repeat 16 -sramd ./sramd-binary            # result-cache bench
//	sramload -cache-smoke -sramd ./sramd-binary -cache-dir /tmp/cas  # CI cache gate
//	sramload -hier-smoke -sramd ./sramd-binary           # CI two-level gate
//	sramload -crash-smoke -sramd ./sramd-binary          # CI crash-recovery gate
//	sramload -coord-smoke -sramd ./sramd-binary          # CI distributed-mode chaos gate
//	sramload -fleet 3 -jobs 12 -sramd ./sramd-binary     # coordinated-sweep bench
//	sramload -version
//
// Load mode submits -jobs identical spec jobs across -clients concurrent
// clients, waits on each via the SSE event stream, fetches every artifact,
// and reports p50/p95/p99 submit→result latency and aggregate accesses/sec.
// Before appending an entry to -out (BENCH_core.json), it verifies that one
// fetched artifact is byte-for-byte identical to an in-process serial run
// of the same spec — the service must never change the numbers. A spawned
// daemon runs with -no-cache (unless -cache-dir is given) so the load
// numbers measure simulation, not cache hits.
//
// Repeat mode (-repeat K) resubmits the same spec K times sequentially
// against a caching daemon and reports the hit rate plus cached-vs-uncached
// p50/p95 latency, appending a "rescache" entry to -out. Every artifact
// must be byte-identical — hit ≡ miss is the cache's core guarantee.
//
// Cache-smoke mode (-cache-smoke) is the CI gate for the result cache:
// submit the golden workload twice, require the first to compute and the
// second to arrive `cached: true` without entering the queue, require both
// byte-identical to a local serial run and matching golden/serve.json, and
// require /metrics to show exactly one miss and one memory-tier hit.
//
// Hier-smoke mode (-hier-smoke) is the CI gate for multi-level scenarios:
// the same end-to-end pass as -smoke but with a hierarchy job (WG L1 over
// the default 256 KB RMW L2), compared byte-for-byte against an in-process
// serial hierarchy run and exactly against golden/hier-serve.json.
//
// Crash-smoke mode (-crash-smoke) is the CI gate for durability: start a
// journaled daemon, submit the golden workload with per-batch
// checkpointing, kill -9 mid-job, restart on the same journal, and require
// the job to survive under its id, resume from a checkpoint, and finish
// with an artifact byte-identical to a local serial run and to
// golden/serve.json. It also checks the stale-lock takeover and the
// live-twin refusal.
//
// Coord-smoke mode (-coord-smoke) is the CI chaos gate for distributed mode:
// spawn three workers and a coordinator, submit a 12-point sweep embedding
// the golden workload, kill -9 one worker provably mid-sweep, and require the
// sweep to finish with at least one redispatch, a merged ledger byte-identical
// to the serial in-process run, the golden point matching golden/serve.json
// exactly, redispatches visible in /metrics, and a clean fleet shutdown.
//
// Fleet mode (-fleet N) is the coordinated-sweep bench: N workers plus a
// coordinator, one controllers×seeds sweep of -jobs points fanned across
// them, verified byte-identical to the serial run before a "coord_fleet"
// entry lands in -out.
//
// Smoke mode starts the daemon (when -sramd is given), submits one pinned
// golden workload, verifies the returned artifact byte-for-byte against a
// local serial run AND against golden/serve.json via report.Compare, checks
// /healthz and /metrics, then stops the daemon with SIGTERM and requires a
// clean exit.
//
// Exit status: 0 success, 1 any failure.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cache8t/internal/coord"
	"cache8t/internal/regress"
	"cache8t/internal/report"
	"cache8t/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sramload: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "", "base URL of a running sramd (e.g. http://127.0.0.1:8344)")
		sramdBin    = flag.String("sramd", "", "path to an sramd binary to spawn on an ephemeral port for the run")
		clients     = flag.Int("clients", 4, "concurrent clients")
		jobs        = flag.Int("jobs", 16, "total jobs to submit")
		controller  = flag.String("controller", "wgrb", "controller kind for every job")
		workloadFlg = flag.String("workload", "bwaves", "bundled workload for every job")
		n           = flag.Int("n", 200_000, "accesses per job")
		seed        = flag.Uint64("seed", 1, "workload seed")
		shards      = flag.Int("shards", 0, "set-shard each job (set-local controllers only)")
		out         = flag.String("out", "BENCH_core.json", "throughput ledger to append the load entry to")
		smoke       = flag.Bool("smoke", false, "run the CI smoke: one golden job, byte-identity + golden compare, clean shutdown")
		cacheSmoke  = flag.Bool("cache-smoke", false, "run the result-cache CI smoke: golden job twice, second must be a cache hit")
		hierSmoke   = flag.Bool("hier-smoke", false, "run the two-level CI smoke: one hierarchy job, byte-identity vs an in-process run + golden compare (default golden: golden/hier-serve.json)")
		crashSmoke  = flag.Bool("crash-smoke", false, "run the crash-recovery CI smoke: kill -9 a daemon mid-job, restart, require the recovered artifact to match the golden")
		coordSmoke  = flag.Bool("coord-smoke", false, "run the distributed-mode CI chaos smoke: 1 coordinator + 3 workers, kill -9 one worker mid-sweep, require redispatch and a serial-identical merged ledger")
		fleetSize   = flag.Int("fleet", 0, "spawn this many workers plus a coordinator and drive a sweep through the fleet, appending a coord_fleet entry to -out")
		journalDir  = flag.String("journal-dir", "", "journal dir for -crash-smoke (default: a fresh temp dir)")
		repeat      = flag.Int("repeat", 0, "resubmit the same spec this many times and report cache hit-rate + latency split")
		cacheDir    = flag.String("cache-dir", "", "pass a persistent CAS dir to the spawned daemon (-sramd mode)")
		goldenPath  = flag.String("golden", "golden/serve.json", "golden artifact for -smoke and -cache-smoke")
		update      = flag.Bool("update", false, "with -smoke, regenerate the golden instead of comparing")
		timeout     = flag.Duration("timeout", 5*time.Minute, "overall deadline")
		showVersion = flag.Bool("version", false, "print version (git SHA + artifact schema) and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(report.Version("sramload"))
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// The crash smoke manages its own daemon generations (it kills one and
	// starts another on the same state), so it branches before the generic
	// spawn below.
	if *crashSmoke {
		if *sramdBin == "" {
			return fmt.Errorf("-crash-smoke requires -sramd (it must kill and restart the daemon)")
		}
		jdir := *journalDir
		if jdir == "" {
			tmp, err := os.MkdirTemp("", "sramd-crash-smoke-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			jdir = tmp
		}
		return runCrashSmoke(ctx, *sramdBin, jdir, *goldenPath)
	}

	// The coordinator modes likewise manage their own fleet of daemons.
	if *coordSmoke {
		if *sramdBin == "" {
			return fmt.Errorf("-coord-smoke requires -sramd (it spawns a fleet and kills a worker)")
		}
		return runCoordSmoke(ctx, *sramdBin, *goldenPath)
	}
	if *fleetSize > 0 {
		if *sramdBin == "" {
			return fmt.Errorf("-fleet requires -sramd (it spawns the fleet itself)")
		}
		entry, err := runFleet(ctx, *sramdBin, *fleetSize, *controller, *workloadFlg, *n, *jobs)
		if err != nil {
			return err
		}
		if err := regress.AppendLedger(*out, entry); err != nil {
			return err
		}
		fmt.Printf("appended coord_fleet entry to %s\n", *out)
		return nil
	}

	// Daemon cache posture per mode: plain load measures simulation
	// throughput, so a spawned daemon gets -no-cache unless the caller
	// explicitly pointed it at a CAS; the cache modes want caching on.
	var daemonArgs []string
	if *cacheDir != "" {
		daemonArgs = append(daemonArgs, "-cache-dir", *cacheDir)
	} else if !*smoke && !*cacheSmoke && !*hierSmoke && *repeat == 0 {
		daemonArgs = append(daemonArgs, "-no-cache")
	}

	base := strings.TrimRight(*addr, "/")
	var daemon *spawnedDaemon
	if *sramdBin != "" {
		var err error
		daemon, err = spawnDaemon(*sramdBin, daemonArgs...)
		if err != nil {
			return err
		}
		defer daemon.kill()
		base = daemon.base
	}
	if base == "" {
		return fmt.Errorf("need -addr or -sramd")
	}
	c := &client{base: base, hc: &http.Client{}}

	if *smoke || *cacheSmoke || *hierSmoke {
		smokeFn := func(ctx context.Context, c *client, goldenPath string, update bool) error {
			return runSmoke(ctx, c, smokeSpec(), "serve-smoke", goldenPath, update)
		}
		gold := *goldenPath
		if *cacheSmoke {
			smokeFn = func(ctx context.Context, c *client, goldenPath string, _ bool) error {
				return runCacheSmoke(ctx, c, goldenPath)
			}
		}
		if *hierSmoke {
			// The hierarchy smoke pins its own golden; only redirect the
			// default so an explicit -golden still wins.
			if !flagSet("golden") {
				gold = "golden/hier-serve.json"
			}
			smokeFn = func(ctx context.Context, c *client, goldenPath string, update bool) error {
				return runSmoke(ctx, c, hierSmokeSpec(), "hier-smoke", goldenPath, update)
			}
		}
		if err := smokeFn(ctx, c, gold, *update); err != nil {
			return err
		}
		if daemon != nil {
			if err := daemon.stopGracefully(); err != nil {
				return fmt.Errorf("graceful shutdown: %w", err)
			}
			log.Printf("daemon shut down cleanly")
		}
		return nil
	}

	spec := server.JobSpec{
		Controller: *controller,
		Workload:   *workloadFlg,
		N:          *n,
		Seed:       *seed,
		Shards:     *shards,
	}
	spec.Normalize()
	if err := spec.Validate(false); err != nil {
		return err
	}
	var entry loadEntry
	var err error
	if *repeat > 0 {
		entry, err = runRepeat(ctx, c, spec, *repeat)
	} else {
		entry, err = runLoad(ctx, c, spec, *clients, *jobs)
	}
	if err != nil {
		return err
	}
	if err := regress.AppendLedger(*out, entry); err != nil {
		return err
	}
	fmt.Printf("appended load entry to %s\n", *out)
	if daemon != nil {
		return daemon.stopGracefully()
	}
	return nil
}

// runLoad is the load-generator path: clients*jobs submissions, latency
// percentiles, aggregate throughput, and the identity check gating the
// ledger append.
func runLoad(ctx context.Context, c *client, spec server.JobSpec, clients, jobs int) (loadEntry, error) {
	if clients < 1 {
		clients = 1
	}
	if jobs < clients {
		jobs = clients
	}
	var (
		mu        sync.Mutex
		latencies []float64
		firstArt  []byte
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < jobs; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				t0 := time.Now()
				_, art, err := c.runJob(ctx, spec)
				lat := time.Since(t0).Seconds() * 1e3
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if art != nil && firstArt == nil {
					firstArt = art
				}
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return loadEntry{}, firstErr
	}

	// The service must never change the numbers: one fetched artifact is
	// re-derived by an in-process *serial* run of the same spec and must be
	// byte-for-byte identical before any throughput claim is recorded.
	serial := spec
	serial.Shards = 0
	local, err := server.Execute(ctx, serial, serial.Workload, nil)
	if err != nil {
		return loadEntry{}, err
	}
	if !bytes.Equal(firstArt, local) {
		return loadEntry{}, fmt.Errorf("artifact from daemon differs from local serial run (%d vs %d bytes)", len(firstArt), len(local))
	}
	log.Printf("identity verified: daemon artifact == local serial artifact (%d bytes)", len(local))

	sort.Float64s(latencies)
	e := loadEntry{
		Schema:     report.SchemaVersion,
		GitSHA:     report.GitSHA(),
		UnixMS:     time.Now().UnixMilli(),
		Mode:       "serve_load",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Clients:    clients,
		Jobs:       jobs,
		Workload:   spec.Workload,
		Controller: spec.Controller,
		N:          spec.N,
		Shards:     spec.Shards,
		P50MS:      percentile(latencies, 0.50),
		P95MS:      percentile(latencies, 0.95),
		P99MS:      percentile(latencies, 0.99),
		WallMS:     wall.Seconds() * 1e3,
		Verified:   true,
	}
	if secs := wall.Seconds(); secs > 0 {
		e.JobsPerSec = float64(jobs) / secs
		e.AccessesPerSec = float64(jobs) * float64(spec.N) / secs
	}
	fmt.Printf("%d jobs x %d accesses over %d clients in %v\n", jobs, spec.N, clients, wall.Round(time.Millisecond))
	fmt.Printf("latency p50 %.1f ms, p95 %.1f ms, p99 %.1f ms; %.0f accesses/sec aggregate\n",
		e.P50MS, e.P95MS, e.P99MS, e.AccessesPerSec)
	return e, nil
}

// runRepeat is the result-cache benchmark: the same spec submitted K times
// in sequence. The first submission computes; every later one must be a
// cache hit with byte-identical artifact bytes. The entry records the hit
// rate and the cached-vs-uncached latency split — the cache's value
// proposition in numbers.
func runRepeat(ctx context.Context, c *client, spec server.JobSpec, k int) (loadEntry, error) {
	if k < 2 {
		k = 2 // one miss plus at least one chance to hit
	}
	var cachedLat, uncachedLat, all []float64
	var firstArt []byte
	hits := 0
	start := time.Now()
	for i := 0; i < k; i++ {
		t0 := time.Now()
		st, art, err := c.runJob(ctx, spec)
		if err != nil {
			return loadEntry{}, fmt.Errorf("repeat %d/%d: %w", i+1, k, err)
		}
		lat := time.Since(t0).Seconds() * 1e3
		all = append(all, lat)
		if st.Cached {
			hits++
			cachedLat = append(cachedLat, lat)
		} else {
			uncachedLat = append(uncachedLat, lat)
		}
		if firstArt == nil {
			firstArt = art
		} else if !bytes.Equal(art, firstArt) {
			return loadEntry{}, fmt.Errorf("repeat %d/%d: cached artifact differs from the first run (%d vs %d bytes)", i+1, k, len(art), len(firstArt))
		}
	}
	wall := time.Since(start)
	if hits == 0 {
		return loadEntry{}, fmt.Errorf("no submission hit the cache in %d repeats — is the daemon running with -no-cache?", k)
	}

	serial := spec
	serial.Shards = 0
	local, err := server.Execute(ctx, serial, serial.Workload, nil)
	if err != nil {
		return loadEntry{}, err
	}
	if !bytes.Equal(firstArt, local) {
		return loadEntry{}, fmt.Errorf("artifact from daemon differs from local serial run (%d vs %d bytes)", len(firstArt), len(local))
	}
	log.Printf("identity verified: all %d artifacts == local serial artifact (%d bytes)", k, len(local))

	sort.Float64s(all)
	sort.Float64s(cachedLat)
	sort.Float64s(uncachedLat)
	e := loadEntry{
		Schema:        report.SchemaVersion,
		GitSHA:        report.GitSHA(),
		UnixMS:        time.Now().UnixMilli(),
		Mode:          "rescache",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Clients:       1,
		Jobs:          k,
		Workload:      spec.Workload,
		Controller:    spec.Controller,
		N:             spec.N,
		P50MS:         percentile(all, 0.50),
		P95MS:         percentile(all, 0.95),
		P99MS:         percentile(all, 0.99),
		WallMS:        wall.Seconds() * 1e3,
		Verified:      true,
		CachedJobs:    hits,
		HitRate:       float64(hits) / float64(k),
		CachedP50MS:   percentile(cachedLat, 0.50),
		CachedP95MS:   percentile(cachedLat, 0.95),
		UncachedP50MS: percentile(uncachedLat, 0.50),
		UncachedP95MS: percentile(uncachedLat, 0.95),
	}
	if secs := wall.Seconds(); secs > 0 {
		e.JobsPerSec = float64(k) / secs
	}
	fmt.Printf("%d repeats: %d cache hits (%.0f%% hit rate)\n", k, hits, 100*e.HitRate)
	fmt.Printf("uncached p50 %.1f ms p95 %.1f ms; cached p50 %.2f ms p95 %.2f ms\n",
		e.UncachedP50MS, e.UncachedP95MS, e.CachedP50MS, e.CachedP95MS)
	return e, nil
}

// smokeSpec is the pinned golden workload the CI smoke submits.
func smokeSpec() server.JobSpec {
	s := server.JobSpec{Controller: "wgrb", Workload: "bwaves", N: 50_000, Seed: 1}
	s.Normalize()
	return s
}

// hierSmokeSpec is the two-level smoke job: a WG first level (the scheme
// whose premature write-backs exercise the bridge's on-chip event path) over
// the spec-defaulted 256 KB RMW second level.
func hierSmokeSpec() server.JobSpec {
	s := server.JobSpec{Controller: "wg", Workload: "bwaves", N: 50_000, Seed: 1, Hierarchy: true}
	s.Normalize()
	return s
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runSmoke gates the service end to end: submit spec, fetch, byte-identity
// vs a local serial run, exact compare against the checked-in golden, and a
// health/metrics sanity pass. name labels the gate in its output
// ("serve-smoke", "hier-smoke").
func runSmoke(ctx context.Context, c *client, spec server.JobSpec, name, goldenPath string, update bool) error {
	if err := c.checkHealth(ctx); err != nil {
		return err
	}
	_, got, err := c.runJob(ctx, spec)
	if err != nil {
		return err
	}
	local, err := server.Execute(ctx, spec, spec.Workload, nil)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, local) {
		return fmt.Errorf("artifact from daemon differs from local serial run (%d vs %d bytes)", len(got), len(local))
	}
	log.Printf("identity verified: daemon artifact == local serial artifact (%d bytes)", len(got))

	if update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			return err
		}
		fmt.Printf("golden updated (%s)\n", goldenPath)
		return nil
	}
	golden, err := report.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("%w (run with -update to create it)", err)
	}
	gotArt, err := report.Decode(got)
	if err != nil {
		return err
	}
	// The smoke workload is fully deterministic, so everything compares
	// exactly — the zero band.
	diff := report.Compare(golden, gotArt, report.Bands{})
	if !diff.OK() {
		t := diff.Table(fmt.Sprintf("%s [DRIFT] vs %s", name, goldenPath), false)
		t.Render(os.Stderr)
		return fmt.Errorf("artifact drifted from %s", goldenPath)
	}
	fmt.Printf("%s ok — artifact matches %s (%d metrics)\n", name, goldenPath, len(gotArt.Metrics))

	body, err := c.get(ctx, "/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(string(body), "sramd_jobs_total") {
		return fmt.Errorf("/metrics is missing sramd_jobs_total")
	}
	return nil
}

// runCacheSmoke gates the result cache end to end: the golden workload
// submitted twice against a caching daemon. The first run must compute and
// match both a local serial run and the checked-in golden; the second must
// come back `cached: true`, already terminal in its 202 (it never entered
// the queue), byte-identical, and visible in the rescache_* metrics.
func runCacheSmoke(ctx context.Context, c *client, goldenPath string) error {
	if err := c.checkHealth(ctx); err != nil {
		return err
	}
	spec := smokeSpec()

	first, miss, err := c.runJob(ctx, spec)
	if err != nil {
		return err
	}
	if first.Cached {
		return fmt.Errorf("first submission was already a cache hit; the cache dir is not fresh")
	}
	local, err := server.Execute(ctx, spec, spec.Workload, nil)
	if err != nil {
		return err
	}
	if !bytes.Equal(miss, local) {
		return fmt.Errorf("uncached artifact differs from local serial run (%d vs %d bytes)", len(miss), len(local))
	}

	second, hit, err := c.runJob(ctx, spec)
	if err != nil {
		return err
	}
	if !second.Cached {
		return fmt.Errorf("repeat submission was not served from the cache")
	}
	if !bytes.Equal(hit, miss) {
		return fmt.Errorf("cache-hit artifact differs from the uncached run (%d vs %d bytes)", len(hit), len(miss))
	}
	log.Printf("identity verified: hit == miss == local serial artifact (%d bytes)", len(hit))

	golden, err := report.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("%w (run `sramload -smoke -update` to create it)", err)
	}
	hitArt, err := report.Decode(hit)
	if err != nil {
		return err
	}
	if diff := report.Compare(golden, hitArt, report.Bands{}); !diff.OK() {
		t := diff.Table(fmt.Sprintf("cache-smoke [DRIFT] vs %s", goldenPath), false)
		t.Render(os.Stderr)
		return fmt.Errorf("cached artifact drifted from %s", goldenPath)
	}

	body, err := c.get(ctx, "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"rescache_misses_total 1",
		`rescache_hits_total{tier="memory"} 1`,
		"rescache_bytes_served_total",
	} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("/metrics missing %q after one miss and one hit", want)
		}
	}
	fmt.Printf("cache-smoke ok — hit ≡ miss ≡ serial, matches %s, metrics consistent\n", goldenPath)
	return nil
}

// runCrashSmoke gates crash recovery end to end — the durability analogue of
// runSmoke:
//
//  1. start a daemon with a journal, submit the golden workload with a tiny
//     batch and per-batch checkpointing (execution knobs: the config hash,
//     and therefore the artifact, are unchanged),
//  2. kill -9 the daemon once the job is provably mid-run,
//  3. verify a second daemon on the same journal dir refuses to start while
//     the first still runs would be ideal — what we can check here is the
//     converse: a daemon started while the *restarted* daemon holds the lock
//     fails fast with a clear error,
//  4. restart on the same state: the job must still exist under its id,
//     resume from a checkpoint, and finish with an artifact byte-identical
//     to a local serial run and to golden/serve.json.
func runCrashSmoke(ctx context.Context, bin, jdir, goldenPath string) error {
	d1, err := spawnDaemon(bin, "-journal-dir", jdir, "-checkpoint-every", "1", "-workers", "1")
	if err != nil {
		return err
	}
	defer d1.kill()
	c1 := &client{base: d1.base, hc: &http.Client{}}
	if err := c1.checkHealth(ctx); err != nil {
		return err
	}

	// The golden spec with a small batch: per-batch checkpoints fsync into
	// the CAS, which stretches the run enough to kill it mid-flight without
	// sleeping or guessing.
	spec := smokeSpec()
	spec.Batch = 64
	st, err := c1.submit(ctx, spec)
	if err != nil {
		return err
	}
	log.Printf("submitted %s; waiting for it to be provably mid-run", st.ID)

	// Poll until enough accesses have been simulated that tens of
	// checkpoints exist, then kill -9.
	const minAccesses = 5000
	for st.Accesses < minAccesses {
		if st.State.Terminal() {
			return fmt.Errorf("job %s finished (%s) before the crash could be injected; checkpointing is not throttling the run", st.ID, st.State)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
		body, err := c1.get(ctx, "/v1/jobs/"+st.ID)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return err
		}
	}
	log.Printf("job %s at %d accesses — kill -9", st.ID, st.Accesses)
	d1.kill() // SIGKILL + reap: no drain, no journal close, no lock release

	d2, err := spawnDaemon(bin, "-journal-dir", jdir, "-checkpoint-every", "1", "-workers", "1")
	if err != nil {
		return fmt.Errorf("restart on the crashed journal (stale-lock takeover): %w", err)
	}
	defer d2.kill()
	c2 := &client{base: d2.base, hc: &http.Client{}}
	if err := c2.checkHealth(ctx); err != nil {
		return err
	}

	// While daemon 2 is alive, a third daemon on the same journal dir must
	// fail fast with a clear lock error — the live-twin guard.
	if out, err := exec.Command(bin, "-listen", "127.0.0.1:0", "-journal-dir", jdir).CombinedOutput(); err == nil {
		return fmt.Errorf("a second live daemon started on the same journal dir")
	} else if !strings.Contains(string(out), "locked by running sramd") {
		return fmt.Errorf("twin-daemon start did not explain the lock conflict: %v: %s", err, out)
	}
	log.Printf("live-twin daemon refused with a clear lock error")

	// The job survived under its original id and runs to completion.
	body, err := c2.get(ctx, "/v1/jobs/"+st.ID)
	if err != nil {
		return fmt.Errorf("job %s did not survive the crash: %w", st.ID, err)
	}
	var rec server.JobStatus
	if err := json.Unmarshal(body, &rec); err != nil {
		return err
	}
	if !rec.Recovered {
		return fmt.Errorf("job %s survived but is not marked recovered: %s", st.ID, body)
	}
	final, err := c2.waitTerminal(ctx, st.ID)
	if err != nil {
		return err
	}
	if final.State != server.StateSucceeded {
		return fmt.Errorf("recovered job %s ended %s: %s", st.ID, final.State, final.Error)
	}
	got, err := c2.get(ctx, "/v1/jobs/"+st.ID+"/result")
	if err != nil {
		return err
	}

	// Identity through the crash: the recovered artifact equals a local
	// serial run of the same spec and the checked-in golden, exactly.
	serial := smokeSpec()
	local, err := server.Execute(ctx, serial, serial.Workload, nil)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, local) {
		return fmt.Errorf("recovered artifact differs from local serial run (%d vs %d bytes)", len(got), len(local))
	}
	golden, err := report.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("%w (run `sramload -smoke -update` to create it)", err)
	}
	gotArt, err := report.Decode(got)
	if err != nil {
		return err
	}
	if diff := report.Compare(golden, gotArt, report.Bands{}); !diff.OK() {
		t := diff.Table(fmt.Sprintf("crash-smoke [DRIFT] vs %s", goldenPath), false)
		t.Render(os.Stderr)
		return fmt.Errorf("recovered artifact drifted from %s", goldenPath)
	}
	log.Printf("identity verified: recovered artifact == local serial == %s (%d bytes)", goldenPath, len(got))

	// Recovery must be visible in the metrics: the job was replayed and
	// resumed from a checkpoint rather than restarted from access zero.
	metrics, err := c2.get(ctx, "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"sramd_recovered_jobs_total 1",
		"sramd_checkpoints_restored_total 1",
		"sramd_journal_bytes",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("/metrics missing %q after recovery", want)
		}
	}

	if err := d2.stopGracefully(); err != nil {
		return fmt.Errorf("graceful shutdown of the recovered daemon: %w", err)
	}
	fmt.Printf("crash-smoke ok — job survived kill -9, resumed from checkpoint, artifact matches %s\n", goldenPath)
	return nil
}

// fleet is a coordinator daemon plus the workers it dispatches to, all
// spawned on ephemeral ports; cl talks to the coordinator.
type fleet struct {
	workers []*spawnedDaemon
	coordd  *spawnedDaemon
	cl      *client
}

// spawnFleet starts n workers, then a coordinator pre-registered with all of
// them via -peers (plus any extra coordinator flags), and waits for the
// coordinator to answer /healthz.
func spawnFleet(ctx context.Context, bin string, n int, coordArgs ...string) (*fleet, error) {
	f := &fleet{}
	ok := false
	defer func() {
		if !ok {
			f.kill()
		}
	}()
	peers := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w, err := spawnDaemon(bin, "-workers", "1")
		if err != nil {
			return nil, err
		}
		f.workers = append(f.workers, w)
		peers = append(peers, w.base)
	}
	args := append([]string{"-coordinator", "-peers", strings.Join(peers, ",")}, coordArgs...)
	cd, err := spawnDaemon(bin, args...)
	if err != nil {
		return nil, err
	}
	f.coordd = cd
	f.cl = &client{base: cd.base, hc: &http.Client{}}
	if err := f.cl.checkHealth(ctx); err != nil {
		return nil, err
	}
	ok = true
	return f, nil
}

// kill is the deferred safety net: SIGKILL everything still running.
func (f *fleet) kill() {
	if f.coordd != nil {
		f.coordd.kill()
	}
	for _, w := range f.workers {
		w.kill()
	}
}

// coordSweepSpec is the pinned sweep the coord smoke submits: the golden
// workload point (wgrb/bwaves/seed 1/N 50000 — exactly smokeSpec) embedded
// in a 3-controller × 4-seed matrix, 12 points total.
func coordSweepSpec() coord.SweepSpec {
	s := coord.SweepSpec{
		Controllers: []string{"rmw", "wg", "wgrb"},
		Workloads:   []string{"bwaves"},
		Seeds:       []uint64{1, 2, 3, 4},
		N:           50_000,
	}
	s.Normalize()
	return s
}

// runCoordSmoke gates distributed mode end to end — the chaos analogue of
// runSmoke:
//
//  1. spawn 3 workers and a coordinator registered with all of them,
//  2. submit the 12-point golden sweep; -dispatch 1 serializes the points so
//     the sweep provably spans a kill window without sleeping or guessing,
//  3. once at least one point is merged but at least four remain, kill -9
//     one worker: with 3 workers round-robin, the dead worker's turn must
//     come up again, so the redispatch path has to fire for the sweep to
//     finish at all,
//  4. require the sweep to succeed with retries >= 1, the merged ledger to
//     be byte-identical to coord.ExecuteSerial of the same spec, the golden
//     point inside it to match golden/serve.json exactly, the redispatch to
//     show in /metrics, and the surviving fleet to shut down cleanly.
func runCoordSmoke(ctx context.Context, bin, goldenPath string) error {
	f, err := spawnFleet(ctx, bin, 3, "-dispatch", "1", "-point-timeout", "30s")
	if err != nil {
		return err
	}
	defer f.kill()

	spec := coordSweepSpec()
	st, err := f.cl.submitSweep(ctx, spec)
	if err != nil {
		return err
	}
	points := st.Points
	log.Printf("sweep %s accepted: %d points over %d workers", st.ID, points, len(f.workers))

	killed := false
	for !st.State.Terminal() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
		if st, err = f.cl.sweepStatus(ctx, st.ID); err != nil {
			return err
		}
		if !killed && st.Done >= 1 && st.Done <= points-4 {
			log.Printf("sweep at %d/%d points — kill -9 worker at %s", st.Done, points, f.workers[0].base)
			f.workers[0].kill()
			killed = true
		}
	}
	if !killed {
		return fmt.Errorf("sweep finished (%s, %d/%d) before a worker could be killed mid-flight", st.State, st.Done, points)
	}
	if st.State != server.StateSucceeded {
		return fmt.Errorf("sweep %s ended %s after the worker kill: %s", st.ID, st.State, st.Error)
	}
	if st.Retries < 1 {
		return fmt.Errorf("sweep survived the kill without a single redispatch — the chaos injection missed")
	}
	log.Printf("sweep succeeded with %d redispatch(es) after the kill", st.Retries)

	// Identity through the chaos: the merged ledger equals a serial
	// in-process run of the same sweep, byte for byte — which also proves no
	// artifact from the killed worker's aborted dispatch was merged.
	merged, err := f.cl.get(ctx, "/v1/sweeps/"+st.ID+"/result")
	if err != nil {
		return err
	}
	serial, err := coord.ExecuteSerial(ctx, spec)
	if err != nil {
		return err
	}
	if !bytes.Equal(merged, serial) {
		return fmt.Errorf("merged ledger differs from the serial in-process run (%d vs %d bytes)", len(merged), len(serial))
	}
	log.Printf("identity verified: merged ledger == serial in-process ledger (%d bytes)", len(merged))

	// The golden point inside the matrix must still match the checked-in
	// golden artifact exactly — the zero band.
	pts, err := spec.Decompose()
	if err != nil {
		return err
	}
	goldenIdx := -1
	for _, p := range pts {
		if p.Spec.Controller == "wgrb" && p.Spec.Seed == 1 {
			goldenIdx = p.Index
		}
	}
	if goldenIdx < 0 {
		return fmt.Errorf("golden point wgrb/seed 1 not found in the decomposed sweep")
	}
	led, err := coord.DecodeLedger(merged)
	if err != nil {
		return err
	}
	art, err := report.Decode([]byte(led.Artifacts[goldenIdx]))
	if err != nil {
		return err
	}
	golden, err := report.ReadFile(goldenPath)
	if err != nil {
		return fmt.Errorf("%w (run `sramload -smoke -update` to create it)", err)
	}
	if diff := report.Compare(golden, art, report.Bands{}); !diff.OK() {
		t := diff.Table(fmt.Sprintf("coord-smoke [DRIFT] vs %s", goldenPath), false)
		t.Render(os.Stderr)
		return fmt.Errorf("golden point in the merged ledger drifted from %s", goldenPath)
	}

	// The redispatch must be visible in the coordinator's metrics.
	metrics, err := f.cl.get(ctx, "/metrics")
	if err != nil {
		return err
	}
	if err := metricAtLeast(metrics, "coord_redispatches_total", 1); err != nil {
		return err
	}
	if err := metricAtLeast(metrics, `coord_sweeps_total{state="succeeded"}`, 1); err != nil {
		return err
	}

	// The coordinator and the two surviving workers drain cleanly.
	if err := f.coordd.stopGracefully(); err != nil {
		return fmt.Errorf("coordinator graceful shutdown: %w", err)
	}
	for _, w := range f.workers[1:] {
		if err := w.stopGracefully(); err != nil {
			return fmt.Errorf("worker graceful shutdown: %w", err)
		}
	}
	fmt.Printf("coord-smoke ok — worker killed mid-sweep, %d redispatch(es), ledger serial-identical, golden point matches %s\n",
		st.Retries, goldenPath)
	return nil
}

// runFleet is the coordinated-sweep bench driver: n workers plus a
// coordinator, one controllers×seeds sweep of pts points fanned across them,
// verified byte-identical to the serial in-process run before the
// "coord_fleet" entry is recorded.
func runFleet(ctx context.Context, bin string, n int, controller, workload string, accesses, pts int) (loadEntry, error) {
	if pts < 1 {
		pts = 1
	}
	// Scale dispatch parallelism with the fleet so the bench actually fans
	// out instead of trickling through the default window.
	f, err := spawnFleet(ctx, bin, n, "-dispatch", strconv.Itoa(2*n))
	if err != nil {
		return loadEntry{}, err
	}
	defer f.kill()

	seeds := make([]uint64, pts)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	spec := coord.SweepSpec{
		Controllers: []string{controller},
		Workloads:   []string{workload},
		Seeds:       seeds,
		N:           accesses,
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return loadEntry{}, err
	}

	start := time.Now()
	st, err := f.cl.submitSweep(ctx, spec)
	if err != nil {
		return loadEntry{}, err
	}
	for !st.State.Terminal() {
		select {
		case <-ctx.Done():
			return loadEntry{}, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
		if st, err = f.cl.sweepStatus(ctx, st.ID); err != nil {
			return loadEntry{}, err
		}
	}
	wall := time.Since(start)
	if st.State != server.StateSucceeded {
		return loadEntry{}, fmt.Errorf("sweep %s ended %s: %s", st.ID, st.State, st.Error)
	}

	merged, err := f.cl.get(ctx, "/v1/sweeps/"+st.ID+"/result")
	if err != nil {
		return loadEntry{}, err
	}
	serial, err := coord.ExecuteSerial(ctx, spec)
	if err != nil {
		return loadEntry{}, err
	}
	if !bytes.Equal(merged, serial) {
		return loadEntry{}, fmt.Errorf("merged ledger differs from the serial in-process run (%d vs %d bytes)", len(merged), len(serial))
	}
	log.Printf("identity verified: merged ledger == serial in-process ledger (%d bytes)", len(merged))

	if err := f.coordd.stopGracefully(); err != nil {
		return loadEntry{}, fmt.Errorf("coordinator graceful shutdown: %w", err)
	}
	for _, w := range f.workers {
		if err := w.stopGracefully(); err != nil {
			return loadEntry{}, fmt.Errorf("worker graceful shutdown: %w", err)
		}
	}

	e := loadEntry{
		Schema:     report.SchemaVersion,
		GitSHA:     report.GitSHA(),
		UnixMS:     time.Now().UnixMilli(),
		Mode:       "coord_fleet",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Clients:    n,
		Jobs:       st.Points,
		Workload:   workload,
		Controller: controller,
		N:          accesses,
		WallMS:     wall.Seconds() * 1e3,
		Verified:   true,
		Retries:    st.Retries,
	}
	if secs := wall.Seconds(); secs > 0 {
		e.JobsPerSec = float64(st.Points) / secs
		e.AccessesPerSec = float64(st.Points) * float64(accesses) / secs
	}
	fmt.Printf("%d points x %d accesses over %d workers in %v (%.1f points/sec, %.0f accesses/sec)\n",
		st.Points, accesses, n, wall.Round(time.Millisecond), e.JobsPerSec, e.AccessesPerSec)
	return e, nil
}

// metricAtLeast asserts metrics contains a `name value` line with
// value >= minVal.
func metricAtLeast(metrics []byte, name string, minVal float64) error {
	for _, line := range strings.Split(string(metrics), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return fmt.Errorf("/metrics %s: unparseable value %q", name, rest)
		}
		if v < minVal {
			return fmt.Errorf("/metrics %s = %v, want >= %v", name, v, minVal)
		}
		return nil
	}
	return fmt.Errorf("/metrics missing %s", name)
}

// loadEntry is one appended record of service throughput in the
// BENCH_core.json ledger (heterogeneous entries; see regress.AppendLedger).
type loadEntry struct {
	Schema     int    `json:"schema"`
	GitSHA     string `json:"git_sha"`
	UnixMS     int64  `json:"unix_ms"`
	Mode       string `json:"mode"`
	Clients    int    `json:"clients"`
	Jobs       int    `json:"jobs"`
	Workload   string `json:"workload"`
	Controller string `json:"controller"`
	N          int    `json:"n"`
	Shards     int    `json:"shards,omitempty"`
	// GoMaxProcs and NumCPU record the parallelism available to the run;
	// entries appended before these fields existed decode with both at 0.
	GoMaxProcs     int     `json:"gomaxprocs,omitempty"`
	NumCPU         int     `json:"num_cpu,omitempty"`
	P50MS          float64 `json:"p50_ms"`
	P95MS          float64 `json:"p95_ms"`
	P99MS          float64 `json:"p99_ms"`
	WallMS         float64 `json:"wall_ms"`
	JobsPerSec     float64 `json:"jobs_per_sec"`
	AccessesPerSec float64 `json:"accesses_per_sec"`
	Verified       bool    `json:"verified_identical"`
	// Coordinator fields, set by -fleet ("coord_fleet" entries): Clients is
	// the worker count, Jobs the sweep's point count.
	Retries int `json:"retries,omitempty"`
	// Result-cache fields, set by -repeat ("rescache" entries).
	CachedJobs    int     `json:"cached_jobs,omitempty"`
	HitRate       float64 `json:"hit_rate,omitempty"`
	CachedP50MS   float64 `json:"cached_p50_ms,omitempty"`
	CachedP95MS   float64 `json:"cached_p95_ms,omitempty"`
	UncachedP50MS float64 `json:"uncached_p50_ms,omitempty"`
	UncachedP95MS float64 `json:"uncached_p95_ms,omitempty"`
}

// percentile returns the q-quantile of sorted xs (nearest-rank).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// client is a minimal sramd API client.
type client struct {
	base string
	hc   *http.Client
}

func (c *client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// checkHealth verifies /healthz answers and logs the daemon's version.
func (c *client) checkHealth(ctx context.Context) error {
	var lastErr error
	for i := 0; i < 50; i++ {
		body, err := c.get(ctx, "/healthz")
		if err == nil {
			log.Printf("daemon healthy: %s", strings.TrimSpace(string(body)))
			return nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return fmt.Errorf("daemon never became healthy: %w", lastErr)
}

// submit POSTs spec and returns the 202 status without waiting for the job
// to finish — the crash smoke needs the job id while the job is mid-run.
func (c *client) submit(ctx context.Context, spec server.JobSpec) (server.JobStatus, error) {
	specBytes, err := spec.Canonical()
	if err != nil {
		return server.JobStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(specBytes))
	if err != nil {
		return server.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return server.JobStatus{}, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st server.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return server.JobStatus{}, err
	}
	return st, nil
}

// runJob submits spec, waits for the terminal state via the SSE event
// stream, and fetches the artifact, returning the terminal status (whose
// Cached field says whether the result cache served it) alongside the
// bytes. A cache hit is already terminal in the 202 response and skips the
// SSE wait. A full queue (429) backs off and retries — that is the load
// generator meeting backpressure, not an error.
func (c *client) runJob(ctx context.Context, spec server.JobSpec) (server.JobStatus, []byte, error) {
	specBytes, err := spec.Canonical()
	if err != nil {
		return server.JobStatus{}, nil, err
	}
	var st server.JobStatus
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(specBytes))
		if err != nil {
			return server.JobStatus{}, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return server.JobStatus{}, nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			select {
			case <-ctx.Done():
				return server.JobStatus{}, nil, ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return server.JobStatus{}, nil, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return server.JobStatus{}, nil, err
		}
		break
	}

	if !st.State.Terminal() {
		if st, err = c.waitTerminal(ctx, st.ID); err != nil {
			return server.JobStatus{}, nil, err
		}
	}
	if st.State != server.StateSucceeded {
		return st, nil, fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	art, err := c.get(ctx, "/v1/jobs/"+st.ID+"/result")
	return st, art, err
}

// submitSweep POSTs a sweep spec to a coordinator and returns the 202
// status without waiting for the sweep to finish.
func (c *client) submitSweep(ctx context.Context, spec coord.SweepSpec) (coord.SweepStatus, error) {
	canon, err := spec.Canonical()
	if err != nil {
		return coord.SweepStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweeps", bytes.NewReader(canon))
	if err != nil {
		return coord.SweepStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return coord.SweepStatus{}, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return coord.SweepStatus{}, fmt.Errorf("submit sweep: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st coord.SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return coord.SweepStatus{}, err
	}
	return st, nil
}

// sweepStatus fetches a sweep's current status from a coordinator.
func (c *client) sweepStatus(ctx context.Context, id string) (coord.SweepStatus, error) {
	body, err := c.get(ctx, "/v1/sweeps/"+id)
	if err != nil {
		return coord.SweepStatus{}, err
	}
	var st coord.SweepStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return coord.SweepStatus{}, err
	}
	return st, nil
}

// waitTerminal follows the job's SSE stream until a terminal status event.
func (c *client) waitTerminal(ctx context.Context, id string) (server.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Include the body: the status line alone ("404 Not Found") says
		// nothing about *why* — the API explains itself in the JSON error.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		return server.JobStatus{}, fmt.Errorf("events %s: %s: %s", id, resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var last server.JobStatus
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			return server.JobStatus{}, err
		}
		if last.State.Terminal() {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return server.JobStatus{}, err
	}
	return last, fmt.Errorf("event stream for %s ended before a terminal state", id)
}

// spawnedDaemon is an sramd child process started for this run.
type spawnedDaemon struct {
	cmd  *exec.Cmd
	base string
}

// spawnDaemon starts bin on an ephemeral port (plus any extra flags, e.g.
// cache posture) and scrapes the resolved address from its single stdout
// line.
func spawnDaemon(bin string, extra ...string) (*spawnedDaemon, error) {
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, extra...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(stdout)
	const prefix = "sramd listening on "
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, prefix) {
			base := strings.TrimSpace(strings.TrimPrefix(line, prefix))
			// Keep draining stdout so the child never blocks on the pipe.
			go io.Copy(io.Discard, stdout)
			log.Printf("spawned %s at %s (pid %d)", bin, base, cmd.Process.Pid)
			return &spawnedDaemon{cmd: cmd, base: base}, nil
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("%s exited before printing its listen address", bin)
}

// stopGracefully sends SIGTERM and requires a clean (exit 0) shutdown.
func (d *spawnedDaemon) stopGracefully() error {
	if d.cmd.Process == nil {
		return nil
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		d.cmd = &exec.Cmd{} // disarm kill()
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly: %w", err)
		}
		return nil
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
}

// kill is the deferred safety net for error paths; stopGracefully disarms it.
func (d *spawnedDaemon) kill() {
	if d.cmd.Process != nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}
